"""End-to-end wiring: cache keys, engine extras, table1, lint, CLI."""

from __future__ import annotations

import json

import pytest

from repro.engine.jobs import Budget, VerificationJob, execute_job
from repro.engine.portfolio import run_race
from repro.harness.cli import main
from repro.harness.table1 import format_table1, run_table1
from repro.models import nsdp, rw
from repro.net.parser import to_text
from repro.props.decide import decide
from repro.static.lint import lint


@pytest.fixture
def nsdp_file(tmp_path):
    path = tmp_path / "nsdp3.net"
    path.write_text(to_text(nsdp(3)), encoding="utf-8")
    return str(path)


class TestCacheKeys:
    def test_off_keys_stay_v2_byte_identical(self):
        net = nsdp(3)
        legacy = VerificationJob(net=net, method="full")
        explicit = VerificationJob(net=net, method="full", reduce="off")
        assert legacy.cache_key_material() == explicit.cache_key_material()
        assert legacy.cache_key_material().startswith("v2\n")

    def test_reduced_keys_are_v3_and_stamp_trace(self):
        net = nsdp(3)
        job = VerificationJob(net=net, method="full", reduce="auto")
        material = job.cache_key_material()
        assert material.startswith("v3\n")
        assert "reduce=auto" in material
        reduction = job.reduction()
        assert f"reduced={reduction.net.canonical_hash()}" in material
        assert f"trace={reduction.trace.trace_hash()}" in material

    def test_modes_never_share_entries(self):
        net = nsdp(3)
        auto = VerificationJob(net=net, method="full", reduce="auto")
        aggressive = VerificationJob(
            net=net, method="full", reduce="aggressive"
        )
        assert (
            auto.cache_key_material() != aggressive.cache_key_material()
        )


class TestEngineExecution:
    def test_unknown_reduce_mode_rejected(self):
        with pytest.raises(ValueError, match="reduce mode"):
            execute_job(VerificationJob(net=nsdp(2), reduce="sideways"))

    def test_result_carries_reduction_provenance(self):
        result = execute_job(
            VerificationJob(net=nsdp(3), method="full", reduce="auto")
        )
        payload = result.reduction
        assert payload is not None
        assert payload["level"] == "deadlock"
        assert payload["mode"] == "auto"
        assert payload["pre"] >= payload["post"]
        assert payload["trace"]["steps"]
        # The extras payload must survive the cache's JSON round trip.
        assert json.loads(json.dumps(result.extras))

    def test_describe_summarizes_not_dumps_the_trace(self):
        result = execute_job(
            VerificationJob(net=nsdp(3), method="full", reduce="auto")
        )
        line = result.describe()
        assert "reduce=" in line
        assert "steps" not in line

    def test_race_with_reduction_still_concludes(self):
        outcome = run_race(
            nsdp(3),
            methods=("full",),
            budget=Budget(max_states=50_000, max_seconds=60.0),
            jobs=1,
            reduce="auto",
        )
        assert outcome.conclusive
        assert outcome.winner.result.deadlock

    def test_decide_threads_reduce_through_races(self):
        decision = decide(
            nsdp(3), "deadlock", reduce="auto", use_static=False
        )
        assert decision.holds is True
        assert decision.result.reduction is not None


class TestTable1:
    def test_verdict_column_identical_with_and_without_reduce(self):
        budget = Budget(max_states=50_000, max_seconds=60.0)
        sizes = {"RW": (4,), "NSDP": (3,)}
        base = run_table1(
            problems=["NSDP", "RW"], sizes=sizes, budget=budget
        )
        shrunk = run_table1(
            problems=["NSDP", "RW"], sizes=sizes, budget=budget,
            reduce="auto",
        )
        for row_a, row_b in zip(base, shrunk):
            assert row_a.problem == row_b.problem
            assert row_a.deadlock == row_b.deadlock

    def test_stats_row_reports_net_sizes(self):
        budget = Budget(max_states=50_000, max_seconds=60.0)
        rows = run_table1(
            problems=["RW"], sizes={"RW": (4,)}, budget=budget,
            reduce="auto",
        )
        cell = rows[0].net_size_cell()
        assert "->" in cell
        table = format_table1(rows, with_paper=False, with_stats=True)
        assert "net P/T/A" in table
        assert cell in table

    def test_unreduced_stats_cell_is_placeholder(self):
        budget = Budget(max_states=50_000, max_seconds=60.0)
        rows = run_table1(problems=["RW"], sizes={"RW": (4,)}, budget=budget)
        assert rows[0].net_size_cell() == "-"


class TestLintFolding:
    def test_report_carries_reduction_findings(self):
        report = lint(rw(4), reduce=True)
        assert report.reduction is not None
        assert report.reduction["findings"]
        assert not report.broken  # advisory only
        assert report.to_json()["reduction"]["rules"]

    def test_sarif_includes_reduce_rules_as_notes(self):
        report = lint(rw(4), reduce=True)
        sarif = report.to_sarif()
        assert sarif["version"] == "2.1.0"
        results = sarif["runs"][0]["results"]
        reduce_results = [
            r for r in results if r["ruleId"].startswith("reduce/")
        ]
        assert reduce_results
        assert all(r["level"] == "note" for r in reduce_results)
        rule_ids = {
            rule["id"] for rule in sarif["runs"][0]["tool"]["driver"]["rules"]
        }
        assert {r["ruleId"] for r in results} <= rule_ids

    def test_default_lint_skips_reduction(self):
        assert lint(rw(4)).reduction is None


class TestCli:
    def test_reduce_explain(self, nsdp_file, capsys):
        assert main(["reduce", nsdp_file, "--explain"]) == 0
        out = capsys.readouterr().out
        assert "fuse-series" in out

    def test_reduce_emits_parseable_net(self, nsdp_file, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        assert (
            main(["reduce", nsdp_file, "--trace-out", str(trace_path)]) == 0
        )
        from repro.net.parser import parse_net
        from repro.reduce import ReductionTrace

        shrunk = parse_net(capsys.readouterr().out)
        assert shrunk.num_places < nsdp(3).num_places
        trace = ReductionTrace.from_json(
            json.loads(trace_path.read_text(encoding="utf-8"))
        )
        assert trace.steps

    def test_reduce_unknown_protect_place(self, nsdp_file, capsys):
        assert main(["reduce", nsdp_file, "--protect", "nope"]) == 2

    def test_lint_sarif_output_parses(self, nsdp_file, capsys):
        assert main(["lint", nsdp_file, "--format", "sarif"]) == 0
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["runs"][0]["tool"]["driver"]["name"] == "gpo-lint"

    def test_verify_like_race_with_reduce_flag(self, nsdp_file, capsys):
        code = main(
            ["race", nsdp_file, "--jobs", "1", "--no-cache", "--reduce"]
        )
        assert code == 1  # deadlock found
        assert "DEADLOCK" in capsys.readouterr().out

    def test_reach_maps_trace_back(self, tmp_path, capsys):
        path = tmp_path / "rw4.net"
        path.write_text(to_text(rw(4)), encoding="utf-8")
        code = main(
            [
                "reach",
                str(path),
                "--target",
                "reading0 & reading1",
                "--reduce",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "REACHED" in out
        assert "trace:" in out
