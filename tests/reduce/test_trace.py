"""Trace serialization, back-mapping and witness replay."""

from __future__ import annotations

import pytest

from repro.analysis import analyze as full_analyze
from repro.models import nsdp
from repro.net import NetBuilder
from repro.reduce import (
    BackMapError,
    ReductionTrace,
    back_map_witness,
    flatten_trace,
    reduce_net,
    replay,
)
from repro.search.witness import DeadlockWitness


def _sequence_net():
    builder = NetBuilder("sequence")
    builder.place("p0", marked=True)
    builder.place("p1")
    builder.place("p2")
    builder.transition("t1", inputs=["p0"], outputs=["p1"])
    builder.transition("t2", inputs=["p1"], outputs=["p2"])
    return builder.build()


class TestSerialization:
    def test_round_trip_preserves_hash_and_steps(self):
        trace = reduce_net(nsdp(3), level="deadlock").trace
        assert trace  # NSDP reduces via fuse-series
        clone = ReductionTrace.from_json(trace.to_json())
        assert clone.trace_hash() == trace.trace_hash()
        assert clone.steps == trace.steps
        assert clone.net_name == trace.net_name

    def test_trace_hash_distinguishes_levels(self):
        net = _sequence_net()
        dead = reduce_net(net, level="deadlock").trace
        count = reduce_net(net, level="count").trace
        assert dead.trace_hash() != count.trace_hash()

    def test_empty_trace_is_falsy(self):
        trace = ReductionTrace(net_name="x", steps=())
        assert not trace
        assert len(trace) == 0


class TestSequenceMapping:
    def test_fused_transition_expands_in_order(self):
        net = _sequence_net()
        reduction = reduce_net(net, level="deadlock")
        mapped = reduction.trace.map_sequence(("t1",))
        assert mapped == ("t1", "t2")
        final = replay(net, mapped)
        assert net.is_deadlocked(final)

    def test_unfused_names_pass_through(self):
        trace = reduce_net(nsdp(3), level="deadlock").trace
        assert trace.map_sequence(()) == ()

    def test_flatten_trace_splits_multisteps(self):
        assert flatten_trace(("a", "{b,c}", "d")) == ("a", "b", "c", "d")

    def test_replay_rejects_disabled_transition(self):
        net = _sequence_net()
        with pytest.raises(BackMapError):
            replay(net, ("t2",))

    def test_replay_rejects_unknown_transition(self):
        net = _sequence_net()
        with pytest.raises(BackMapError):
            replay(net, ("nope",))


class TestWitnessBackMapping:
    def test_reduced_witness_replays_on_original(self):
        net = _sequence_net()
        reduction = reduce_net(net, level="deadlock")
        shrunk = full_analyze(reduction.net)
        assert shrunk.deadlock and shrunk.witness is not None
        witness = back_map_witness(net, reduction.trace, shrunk.witness)
        final = replay(net, witness.trace)
        assert net.is_deadlocked(final)
        assert witness.marking == net.marking_names(final)

    def test_marking_only_witness_restored_via_directives(self):
        net = nsdp(2)
        reduction = reduce_net(net, level="deadlock")
        assert reduction.reduced
        # A symbolic-style witness: deadlock marking, no trace.
        shrunk = full_analyze(reduction.net)
        assert shrunk.deadlock and shrunk.witness.marking
        bare = DeadlockWitness(
            marking=shrunk.witness.marking, trace=(), label=shrunk.witness.label
        )
        witness = back_map_witness(net, reduction.trace, bare)
        marking = net.marking_from_names(witness.marking)
        assert net.is_deadlocked(marking)

    def test_unmappable_witness_raises(self):
        net = _sequence_net()
        reduction = reduce_net(net, level="deadlock")
        bogus = DeadlockWitness(marking=frozenset(), trace=("t2", "t1"))
        with pytest.raises(BackMapError):
            back_map_witness(net, reduction.trace, bogus)

    def test_identity_trace_verifies_and_passes_through(self):
        net = _sequence_net()
        result = full_analyze(net)
        trace = ReductionTrace(net_name=net.name, steps=())
        witness = back_map_witness(net, trace, result.witness)
        assert witness.trace == result.witness.trace
