"""Per-rule unit tests on hand-built nets.

Each rule gets the smallest net exhibiting its pattern, and the test
checks three things: the rule fires, the shrunk net is what the rule
promises, and the thing the rule's level must preserve actually is
preserved (checked exhaustively with the full explorer — the nets are
tiny).
"""

from __future__ import annotations

import pytest

from repro.analysis import analyze as full_analyze
from repro.net import NetBuilder
from repro.reduce import (
    MODES,
    RULES,
    RULES_BY_LEVEL,
    ReductionLevelError,
    reduce_net,
)


def _sequence_net():
    builder = NetBuilder("sequence")
    builder.place("p0", marked=True)
    builder.place("p1")
    builder.place("p2")
    builder.transition("t1", inputs=["p0"], outputs=["p1"])
    builder.transition("t2", inputs=["p1"], outputs=["p2"])
    return builder.build()


class TestFuseSeries:
    def test_series_place_fused(self):
        net = _sequence_net()
        reduction = reduce_net(net, level="deadlock")
        assert reduction.rule_counts().get("fuse-series")
        assert "p1" not in reduction.net.places
        assert "t2" not in reduction.net.transitions

    def test_deadlock_verdict_preserved(self):
        net = _sequence_net()
        reduction = reduce_net(net, level="deadlock")
        assert (
            full_analyze(net).deadlock
            == full_analyze(reduction.net).deadlock
            is True
        )

    def test_not_applied_below_deadlock_level(self):
        net = _sequence_net()
        for level in ("count", "reachability"):
            assert not reduce_net(net, level=level).rule_counts().get(
                "fuse-series"
            )


class TestConstantPlace:
    def _net(self):
        builder = NetBuilder("constant")
        builder.place("c", marked=True)
        builder.place("p0", marked=True)
        builder.place("p1")
        builder.transition("go", inputs=["c", "p0"], outputs=["c", "p1"])
        builder.transition("back", inputs=["p1"], outputs=["p0"])
        return builder.build()

    def test_self_loop_constant_removed_and_counts_kept(self):
        net = self._net()
        reduction = reduce_net(net, level="count")
        assert reduction.rule_counts().get("constant-place")
        assert "c" not in reduction.net.places
        base, shrunk = full_analyze(net), full_analyze(reduction.net)
        assert (base.states, base.edges) == (shrunk.states, shrunk.edges)
        assert base.deadlock == shrunk.deadlock

    def test_protected_place_survives(self):
        net = self._net()
        reduction = reduce_net(net, level="count", protect=("c",))
        assert "c" in reduction.net.places


class TestDeadTransition:
    def _net(self):
        builder = NetBuilder("dead")
        builder.place("p0", marked=True)
        builder.place("p1")
        builder.place("z")  # never marked: no producer, empty at m0
        builder.transition("go", inputs=["p0"], outputs=["p1"])
        builder.transition("back", inputs=["p1"], outputs=["p0"])
        builder.transition("dz", inputs=["z"], outputs=["p0"])
        return builder.build()

    def test_structurally_dead_transition_removed(self):
        net = self._net()
        reduction = reduce_net(net, level="count")
        assert reduction.rule_counts().get("dead-transition")
        assert "dz" not in reduction.net.transitions
        assert "z" not in reduction.net.places
        base, shrunk = full_analyze(net), full_analyze(reduction.net)
        assert (base.states, base.edges) == (shrunk.states, shrunk.edges)


class TestDuplicatePlace:
    def _net(self):
        builder = NetBuilder("duplicate")
        builder.place("p", marked=True)
        builder.place("q", marked=True)
        builder.place("r")
        builder.transition("t", inputs=["p", "q"], outputs=["r"])
        builder.transition("u", inputs=["r"], outputs=["p", "q"])
        return builder.build()

    def test_one_twin_removed(self):
        net = self._net()
        reduction = reduce_net(net, level="count")
        assert reduction.rule_counts().get("duplicate-place") == 1
        survivors = {"p", "q"} & set(reduction.net.places)
        assert len(survivors) == 1
        base, shrunk = full_analyze(net), full_analyze(reduction.net)
        assert (base.states, base.edges) == (shrunk.states, shrunk.edges)

    def test_protected_twin_is_the_keeper(self):
        reduction = reduce_net(self._net(), level="count", protect=("q",))
        assert "q" in reduction.net.places
        assert "p" not in reduction.net.places


class TestIsolatedPlace:
    def test_isolated_place_removed(self):
        builder = NetBuilder("isolated")
        builder.place("p0", marked=True)
        builder.place("island")
        builder.place("marked_island", marked=True)
        builder.transition("spin", inputs=["p0"], outputs=["p0"])
        net = builder.build()
        reduction = reduce_net(net, level="count")
        # The unmarked island is swept up by dead-transition's stranded-
        # place cleanup; the marked one only isolated-place may take.
        assert reduction.rule_counts().get("isolated-place") == 1
        assert set(reduction.net.places) == {"p0"}


class TestSinkPlace:
    def test_sink_removed_at_reachability_not_count(self):
        net = _sequence_net()
        count = reduce_net(net, level="count")
        assert "p2" in count.net.places
        reach = reduce_net(net, level="reachability")
        assert reach.rule_counts().get("sink-place")
        assert "p2" not in reach.net.places


class TestLevelsAndModes:
    def test_levels_nest(self):
        count = {rule.name for rule in RULES_BY_LEVEL["count"]}
        reach = {rule.name for rule in RULES_BY_LEVEL["reachability"]}
        dead = {rule.name for rule in RULES_BY_LEVEL["deadlock"]}
        assert count < reach < dead
        assert dead == {rule.name for rule in RULES}

    def test_unknown_level_rejected(self):
        with pytest.raises(ReductionLevelError):
            reduce_net(_sequence_net(), level="telepathy")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReductionLevelError):
            reduce_net(_sequence_net(), mode="extreme")

    def test_off_mode_is_identity(self):
        net = _sequence_net()
        reduction = reduce_net(net, mode="off")
        assert reduction.net is net
        assert not reduction.reduced
        assert "off" in MODES

    def test_reduction_memoized_per_net_instance(self):
        net = _sequence_net()
        assert reduce_net(net, level="deadlock") is reduce_net(
            net, level="deadlock"
        )
        assert reduce_net(net, level="deadlock") is not reduce_net(
            net, level="count"
        )

    def test_reduced_net_keeps_name_and_pickles(self):
        import pickle

        net = _sequence_net()
        reduction = reduce_net(net, level="deadlock")
        assert reduction.net.name == net.name
        clone = pickle.loads(pickle.dumps(net))
        assert clone.places == net.places
