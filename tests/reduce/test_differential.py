"""Differential guarantee: reduction never changes an answer.

Random safe nets (hypothesis) and every Table 1 family are analyzed
reduced and unreduced; conclusive verdicts must agree, count-level
reductions must keep exact state/edge counts, and every mapped witness
must stand up on the original net (trace replay or dead-verified
marking).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis import analyze as full_analyze
from repro.harness.runner import Budget, run_analyzer
from repro.harness.table1 import PROBLEMS
from repro.net.exceptions import UnsafeNetError
from repro.reduce import back_map_witness, reduce_net, replay

from ..conftest import state_machine_nets

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_BUDGET = {"max_states": 3000, "max_seconds": 20.0}

_FAMILY_SIZES = {"NSDP": 4, "ASAT": 4, "OVER": 4, "RW": 4}


class TestRandomNets:
    @_SETTINGS
    @given(net=state_machine_nets())
    def test_deadlock_verdict_invariant_under_reduction(self, net):
        reduction = reduce_net(net, level="deadlock")
        try:
            base = full_analyze(net, **_BUDGET)
            shrunk = full_analyze(reduction.net, **_BUDGET)
        except UnsafeNetError:
            return
        if not (base.exhaustive and shrunk.exhaustive):
            return
        assert base.deadlock == shrunk.deadlock
        if shrunk.deadlock and shrunk.witness is not None:
            witness = back_map_witness(net, reduction.trace, shrunk.witness)
            if witness.trace:
                assert net.is_deadlocked(replay(net, witness.trace))

    @_SETTINGS
    @given(net=state_machine_nets())
    def test_count_level_keeps_exact_counts(self, net):
        reduction = reduce_net(net, level="count")
        try:
            base = full_analyze(net, **_BUDGET)
            shrunk = full_analyze(reduction.net, **_BUDGET)
        except UnsafeNetError:
            return
        if not (base.exhaustive and shrunk.exhaustive):
            return
        assert (base.states, base.edges) == (shrunk.states, shrunk.edges)
        assert base.deadlock == shrunk.deadlock


class TestTable1Families:
    @pytest.mark.parametrize("family", sorted(_FAMILY_SIZES))
    @pytest.mark.parametrize(
        "method", ["full", "stubborn", "gpo", "symbolic"]
    )
    def test_analyzer_verdict_matches_unreduced(self, family, method):
        net = PROBLEMS[family](_FAMILY_SIZES[family])
        budget = Budget(max_states=50_000, max_seconds=60.0)
        base = run_analyzer(method, net, budget)
        shrunk = run_analyzer(method, net, budget, reduce="auto")
        assert base.deadlock == shrunk.deadlock
        assert shrunk.reduction is not None
        assert shrunk.reduction["pre"][0] >= shrunk.reduction["post"][0]
        assert "replay_error" not in shrunk.reduction
        if shrunk.deadlock and shrunk.witness is not None:
            # back_map_witness already dead-verified the marking; check
            # the trace (when one survived mapping) replays end to end.
            if shrunk.witness.trace:
                final = replay(net, shrunk.witness.trace)
                assert net.is_deadlocked(final)
            else:
                marking = net.marking_from_names(shrunk.witness.marking)
                assert net.is_deadlocked(marking)

    @pytest.mark.parametrize("family", sorted(_FAMILY_SIZES))
    def test_every_family_measurably_reduced(self, family):
        net = PROBLEMS[family](_FAMILY_SIZES[family])
        reduction = reduce_net(net, level="deadlock")
        assert reduction.reduced
        pre, post = reduction.sizes()
        assert post[1] < pre[1]  # strictly fewer transitions

    def test_count_level_rw_counts_match_exactly(self):
        net = PROBLEMS["RW"](4)
        reduction = reduce_net(net, level="count")
        assert reduction.reduced and reduction.counts_preserved
        base = full_analyze(net)
        shrunk = full_analyze(reduction.net)
        assert (base.states, base.edges) == (shrunk.states, shrunk.edges)
