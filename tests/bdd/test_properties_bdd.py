"""Property tests: the BDD engine against brute-force truth tables.

Random Boolean expressions are compiled to BDDs and compared with direct
evaluation on every assignment; quantifiers and counts are checked against
their enumeration semantics.  This pins down the engine the symbolic
baseline and the GPN family backend both stand on.
"""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import (
    BddManager,
    Var,
    Const,
    exists,
    forall,
    iter_models,
    relprod,
    restrict,
    satcount,
)

VARS = ["a", "b", "c", "d"]
LEVELS = {name: i for i, name in enumerate(VARS)}


def exprs(depth=3):
    base = st.one_of(
        st.sampled_from([Var(v) for v in VARS]),
        st.sampled_from([Const(True), Const(False)]),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda p: p[0] & p[1]),
            st.tuples(children, children).map(lambda p: p[0] | p[1]),
            st.tuples(children, children).map(lambda p: p[0] ^ p[1]),
            st.tuples(children, children).map(lambda p: p[0] >> p[1]),
            st.tuples(children, children).map(lambda p: p[0].iff(p[1])),
            children.map(lambda e: ~e),
        )

    return st.recursive(base, extend, max_leaves=12)


def assignments():
    return list(product([False, True], repeat=len(VARS)))


def as_level_map(values):
    return {LEVELS[name]: value for name, value in zip(VARS, values)}


def as_name_map(values):
    return dict(zip(VARS, values))


@given(expr=exprs())
@settings(max_examples=200, deadline=None)
def test_compilation_matches_evaluation(expr):
    mgr = BddManager()
    node = expr.to_bdd(mgr, LEVELS)
    for values in assignments():
        assert mgr.evaluate(node, as_level_map(values)) == expr.evaluate(
            as_name_map(values)
        )


@given(expr=exprs())
@settings(max_examples=100, deadline=None)
def test_satcount_matches_enumeration(expr):
    mgr = BddManager()
    mgr.declare(len(VARS))
    node = expr.to_bdd(mgr, LEVELS)
    expected = sum(
        expr.evaluate(as_name_map(values)) for values in assignments()
    )
    assert satcount(mgr, node, len(VARS)) == expected
    assert len(list(iter_models(mgr, node, range(len(VARS))))) == expected


@given(expr=exprs(), var=st.sampled_from(VARS), value=st.booleans())
@settings(max_examples=100, deadline=None)
def test_restrict_matches_semantics(expr, var, value):
    mgr = BddManager()
    node = expr.to_bdd(mgr, LEVELS)
    restricted = restrict(mgr, node, LEVELS[var], value)
    for values in assignments():
        forced = dict(as_name_map(values))
        forced[var] = value
        assert mgr.evaluate(
            restricted, as_level_map(values)
        ) == expr.evaluate(forced)


@given(expr=exprs(), var=st.sampled_from(VARS))
@settings(max_examples=100, deadline=None)
def test_quantifiers_match_semantics(expr, var):
    mgr = BddManager()
    node = expr.to_bdd(mgr, LEVELS)
    exists_node = exists(mgr, node, [LEVELS[var]])
    forall_node = forall(mgr, node, [LEVELS[var]])
    for values in assignments():
        name_map = as_name_map(values)
        branches = [
            expr.evaluate({**name_map, var: False}),
            expr.evaluate({**name_map, var: True}),
        ]
        level_map = as_level_map(values)
        assert mgr.evaluate(exists_node, level_map) == any(branches)
        assert mgr.evaluate(forall_node, level_map) == all(branches)


@given(left=exprs(), right=exprs(), var=st.sampled_from(VARS))
@settings(max_examples=100, deadline=None)
def test_relprod_equals_exists_of_and(left, right, var):
    mgr = BddManager()
    f = left.to_bdd(mgr, LEVELS)
    g = right.to_bdd(mgr, LEVELS)
    level = LEVELS[var]
    assert relprod(mgr, f, g, [level]) == exists(
        mgr, mgr.and_(f, g), [level]
    )


@given(expr=exprs())
@settings(max_examples=100, deadline=None)
def test_canonicity(expr):
    # Compiling twice (even via different managers) yields equal structure:
    # same node id in one manager, isomorphic evaluation across managers.
    mgr = BddManager()
    assert expr.to_bdd(mgr, LEVELS) == expr.to_bdd(mgr, LEVELS)
