"""Tests for the Boolean-expression front-end."""

import pytest

from repro.bdd import FALSE, TRUE, BddManager, Const, Var


class TestEvaluate:
    def test_var(self):
        assert Var("x").evaluate({"x": True})
        assert not Var("x").evaluate({"x": False})

    def test_constants(self):
        assert TRUE.evaluate({})
        assert not FALSE.evaluate({})

    def test_operators(self):
        a, b = Var("a"), Var("b")
        env = {"a": True, "b": False}
        assert (a & ~b).evaluate(env)
        assert (a | b).evaluate(env)
        assert (a ^ b).evaluate(env)
        assert not (a >> ~b).evaluate({"a": True, "b": True})
        assert a.iff(b).evaluate({"a": False, "b": False})

    def test_variables_collected(self):
        expr = (Var("a") & Var("b")) | ~Var("c")
        assert expr.variables() == frozenset({"a", "b", "c"})
        assert TRUE.variables() == frozenset()


class TestCompile:
    def test_constant_folding(self):
        mgr = BddManager()
        assert TRUE.to_bdd(mgr, {}) == 1
        assert FALSE.to_bdd(mgr, {}) == 0

    def test_missing_variable_raises(self):
        mgr = BddManager()
        with pytest.raises(KeyError):
            Var("ghost").to_bdd(mgr, {})

    def test_compile_matches_evaluate(self):
        mgr = BddManager()
        levels = {"a": 0, "b": 1}
        expr = (Var("a") >> Var("b")) ^ ~Var("a")
        node = expr.to_bdd(mgr, levels)
        for a in (False, True):
            for b in (False, True):
                assert mgr.evaluate(node, {0: a, 1: b}) == expr.evaluate(
                    {"a": a, "b": b}
                )

    def test_frozen_dataclasses(self):
        v = Var("x")
        with pytest.raises(Exception):
            v.name = "y"  # type: ignore[misc]

    def test_const_equality(self):
        assert Const(True) == TRUE
        assert Const(False) == FALSE
