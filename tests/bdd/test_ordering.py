"""Tests for variable-ordering heuristics."""

import pytest

from repro.bdd import BddManager, force_order, interleaved_order


class TestInterleavedOrder:
    def test_layout(self):
        current, nxt = interleaved_order(3)
        assert current == {0: 0, 1: 2, 2: 4}
        assert nxt == {0: 1, 1: 3, 2: 5}

    def test_pairs_adjacent(self):
        current, nxt = interleaved_order(8)
        for i in range(8):
            assert nxt[i] == current[i] + 1


class TestForceOrder:
    def test_permutation(self):
        order = force_order(5, [[0, 4], [1, 3]])
        assert sorted(order) == list(range(5))

    def test_groups_pulled_together(self):
        # Two interleaved groups: FORCE should bring each group's
        # variables closer than the worst-case span.
        edges = [[0, 2, 4], [1, 3, 5]]
        order = force_order(6, edges)
        pos = {v: i for i, v in enumerate(order)}
        span = lambda e: max(pos[v] for v in e) - min(pos[v] for v in e)
        assert span(edges[0]) + span(edges[1]) <= 8  # identity would be 8

    def test_chain_stays_roughly_linear(self):
        # Hyperedges of a chain: the identity order is optimal; FORCE must
        # not make it worse.
        edges = [[i, i + 1] for i in range(7)]
        order = force_order(8, edges)
        pos = {v: i for i, v in enumerate(order)}
        total = sum(abs(pos[i] - pos[i + 1]) for i in range(7))
        assert total <= 9

    def test_empty(self):
        assert force_order(0, []) == []

    def test_no_edges_identity(self):
        assert force_order(4, []) == [0, 1, 2, 3]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            force_order(2, [[0, 5]])


def test_ordering_changes_bdd_size():
    # The textbook example: pairwise ANDs of (x_i AND y_i) are linear when
    # pairs are adjacent, exponential when all x's precede all y's.
    n = 6

    def build(order_pairs: bool) -> int:
        mgr = BddManager()
        node = 1  # ONE
        for i in range(n):
            if order_pairs:
                x, y = mgr.var(2 * i), mgr.var(2 * i + 1)
            else:
                x, y = mgr.var(i), mgr.var(n + i)
            node = mgr.and_(node, mgr.or_(x, y))
        return mgr.count_nodes(node)

    assert build(True) < build(False)
