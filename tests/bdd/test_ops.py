"""Unit tests for quantification, relprod, renaming, counting, models."""

from itertools import product

import pytest

from repro.bdd import (
    BddManager,
    ONE,
    ZERO,
    any_model,
    exists,
    forall,
    iter_models,
    relprod,
    rename,
    restrict,
    satcount,
)


@pytest.fixture
def mgr():
    return BddManager()


def make(mgr):
    """(x0 & ~x1) | x2 — the running example."""
    return mgr.or_(mgr.and_(mgr.var(0), mgr.nvar(1)), mgr.var(2))


class TestRestrict:
    def test_positive_cofactor(self, mgr):
        f = make(mgr)
        g = restrict(mgr, f, 2, True)
        assert g == ONE

    def test_negative_cofactor(self, mgr):
        f = make(mgr)
        g = restrict(mgr, f, 2, False)
        for a, b in product([False, True], repeat=2):
            assert mgr.evaluate(g, {0: a, 1: b}) == (a and not b)

    def test_missing_variable_noop(self, mgr):
        f = mgr.var(0)
        assert restrict(mgr, f, 5, True) == f


class TestQuantifiers:
    def test_exists(self, mgr):
        f = make(mgr)
        g = exists(mgr, f, [2])
        assert g == ONE  # x2=1 always satisfies

    def test_exists_multiple(self, mgr):
        f = mgr.and_(mgr.var(0), mgr.var(1))
        assert exists(mgr, f, [0, 1]) == ONE
        assert exists(mgr, ZERO, [0, 1]) == ZERO

    def test_exists_empty_set_noop(self, mgr):
        f = make(mgr)
        assert exists(mgr, f, []) == f

    def test_forall(self, mgr):
        f = mgr.or_(mgr.var(0), mgr.var(1))
        assert forall(mgr, f, [0]) != ONE
        g = forall(mgr, f, [1])  # must hold for x1 in {0,1}: needs x0
        assert g == mgr.var(0)


class TestRelprod:
    def test_equals_exists_of_and(self, mgr):
        f = make(mgr)
        g = mgr.iff(mgr.var(0), mgr.var(2))
        direct = exists(mgr, mgr.and_(f, g), [0])
        fused = relprod(mgr, f, g, [0])
        assert direct == fused

    def test_zero_operands(self, mgr):
        assert relprod(mgr, ZERO, ONE, [0]) == ZERO
        assert relprod(mgr, ONE, ZERO, [0]) == ZERO

    def test_no_quantification(self, mgr):
        f, g = mgr.var(0), mgr.var(1)
        assert relprod(mgr, f, g, []) == mgr.and_(f, g)


class TestRename:
    def test_shift(self, mgr):
        f = mgr.and_(mgr.var(0), mgr.var(2))
        g = rename(mgr, f, {0: 1, 2: 3})
        assert g == mgr.and_(mgr.var(1), mgr.var(3))

    def test_identity(self, mgr):
        f = make(mgr)
        assert rename(mgr, f, {}) == f

    def test_non_monotone_rejected(self, mgr):
        f = mgr.and_(mgr.var(0), mgr.var(1))
        with pytest.raises(ValueError):
            rename(mgr, f, {0: 3, 1: 2})


class TestSatcount:
    def test_example(self, mgr):
        assert satcount(mgr, make(mgr), 3) == 5

    def test_terminals(self, mgr):
        mgr.declare(4)
        assert satcount(mgr, ONE, 4) == 16
        assert satcount(mgr, ZERO, 4) == 0

    def test_free_variables_counted(self, mgr):
        f = mgr.var(1)
        assert satcount(mgr, f, 3) == 4  # x0 and x2 free

    def test_default_num_vars(self, mgr):
        mgr.declare(3)
        assert satcount(mgr, mgr.var(0)) == 4

    def test_insufficient_num_vars_rejected(self, mgr):
        f = mgr.var(3)
        with pytest.raises(ValueError):
            satcount(mgr, f, 2)


class TestModels:
    def test_any_model(self, mgr):
        f = make(mgr)
        model = any_model(mgr, f, [0, 1, 2])
        assert model is not None
        assert mgr.evaluate(f, model)

    def test_any_model_zero(self, mgr):
        assert any_model(mgr, ZERO) is None

    def test_iter_models_complete(self, mgr):
        f = make(mgr)
        models = list(iter_models(mgr, f, [0, 1, 2]))
        assert len(models) == 5
        assert len({tuple(sorted(m.items())) for m in models}) == 5
        for model in models:
            assert mgr.evaluate(f, model)

    def test_iter_models_limit(self, mgr):
        f = make(mgr)
        assert len(list(iter_models(mgr, f, [0, 1, 2], limit=2))) == 2

    def test_iter_models_expands_free_vars(self, mgr):
        f = mgr.var(0)
        models = list(iter_models(mgr, f, [0, 1]))
        assert len(models) == 2
