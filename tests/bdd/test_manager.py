"""Unit tests for the core ROBDD manager."""

from itertools import product

import pytest

from repro.bdd import ONE, ZERO, BddManager


@pytest.fixture
def mgr():
    return BddManager()


class TestNodes:
    def test_terminals(self, mgr):
        assert mgr.evaluate(ONE, {})
        assert not mgr.evaluate(ZERO, {})

    def test_var_and_nvar(self, mgr):
        x = mgr.var(0)
        nx = mgr.nvar(0)
        assert mgr.evaluate(x, {0: True})
        assert not mgr.evaluate(x, {0: False})
        assert mgr.evaluate(nx, {0: False})
        assert mgr.not_(x) == nx

    def test_hash_consing(self, mgr):
        assert mgr.var(3) == mgr.var(3)
        before = mgr.num_nodes
        mgr.var(3)
        assert mgr.num_nodes == before

    def test_reduction_rule(self, mgr):
        # ite(x, g, g) must collapse to g without creating a node.
        x = mgr.var(0)
        y = mgr.var(1)
        assert mgr.ite(x, y, y) == y

    def test_negative_level_rejected(self, mgr):
        with pytest.raises(ValueError):
            mgr.var(-1)

    def test_declare(self, mgr):
        mgr.declare(5)
        assert mgr.num_vars == 5
        mgr.declare(3)
        assert mgr.num_vars == 5


class TestConnectives:
    def test_truth_tables(self, mgr):
        x, y = mgr.var(0), mgr.var(1)
        cases = {
            "and": (mgr.and_(x, y), lambda a, b: a and b),
            "or": (mgr.or_(x, y), lambda a, b: a or b),
            "xor": (mgr.xor(x, y), lambda a, b: a != b),
            "implies": (mgr.implies(x, y), lambda a, b: (not a) or b),
            "iff": (mgr.iff(x, y), lambda a, b: a == b),
            "diff": (mgr.diff(x, y), lambda a, b: a and not b),
        }
        for name, (node, ref) in cases.items():
            for a, b in product([False, True], repeat=2):
                assert mgr.evaluate(node, {0: a, 1: b}) == ref(a, b), name

    def test_idempotence_and_canonicity(self, mgr):
        x, y = mgr.var(0), mgr.var(1)
        assert mgr.and_(x, x) == x
        assert mgr.or_(x, x) == x
        assert mgr.and_(x, y) == mgr.and_(y, x)  # canonical form
        assert mgr.not_(mgr.not_(x)) == x

    def test_and_or_all(self, mgr):
        xs = [mgr.var(i) for i in range(4)]
        everything = mgr.and_all(xs)
        assert mgr.evaluate(everything, {i: True for i in range(4)})
        assert not mgr.evaluate(everything, {0: False, 1: True, 2: True, 3: True})
        nothing = mgr.or_all([])
        assert nothing == ZERO
        assert mgr.and_all([]) == ONE

    def test_short_circuits(self, mgr):
        x = mgr.var(0)
        assert mgr.and_all([x, ZERO, mgr.var(1)]) == ZERO
        assert mgr.or_all([x, ONE]) == ONE


class TestInspection:
    def test_support(self, mgr):
        x, z = mgr.var(0), mgr.var(2)
        f = mgr.or_(x, z)
        assert mgr.support(f) == frozenset({0, 2})
        assert mgr.support(ONE) == frozenset()

    def test_count_nodes(self, mgr):
        x, y = mgr.var(0), mgr.var(1)
        f = mgr.and_(x, y)
        assert mgr.count_nodes(f) == 2
        assert mgr.count_nodes(ZERO) == 0
        # shared subgraphs counted once
        g = mgr.or_(f, mgr.and_(x, y))
        assert mgr.count_nodes(f, g) == mgr.count_nodes(f)

    def test_evaluate_missing_variable_raises(self, mgr):
        f = mgr.var(1)
        with pytest.raises(KeyError):
            mgr.evaluate(f, {0: True})

    def test_iter_nodes(self, mgr):
        f = mgr.and_(mgr.var(0), mgr.var(1))
        nodes = list(mgr.iter_nodes(f))
        assert len(nodes) == 2
        levels = {level for _, level, _, _ in nodes}
        assert levels == {0, 1}

    def test_to_expr_string(self, mgr):
        f = mgr.var(0)
        assert mgr.to_expr_string(f) == "ite(x0, true, false)"
        assert mgr.to_expr_string(f, {0: "a"}) == "ite(a, true, false)"
        assert mgr.to_expr_string(ZERO) == "false"
