"""Serve-layer observability surface: traces, flight recorder, SLO.

Same harness as ``test_app``: a real ServeApp on an ephemeral port per
test, event-driven waits only.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any, AsyncIterator

from repro.models import nsdp
from repro.net.parser import to_text
from repro.serve import ServeApp, ServeClient, ServeConfig

TEST_TIMEOUT = 60.0


def run(coro: Any) -> Any:
    return asyncio.run(asyncio.wait_for(coro, TEST_TIMEOUT))


@contextlib.asynccontextmanager
async def serve_app(
    tmp_path: Any, **overrides: Any
) -> AsyncIterator[tuple[ServeApp, ServeClient]]:
    settings: dict[str, Any] = dict(
        host="127.0.0.1",
        port=0,
        workers=2,
        cache_dir=str(tmp_path / "serve-cache"),
        poll_interval=0.01,
    )
    settings.update(overrides)
    app = ServeApp(ServeConfig(**settings))
    await app.start()
    try:
        yield app, ServeClient("127.0.0.1", app.port)
    finally:
        await app.stop()


def submit_body(**overrides: Any) -> dict[str, Any]:
    body: dict[str, Any] = {
        "net": to_text(nsdp(2)),
        "method": "gpo",
        "tenant": "tests",
    }
    body.update(overrides)
    return body


async def finish_job(client: ServeClient, job_id: str) -> None:
    async for _ in client.stream_events(job_id):
        pass


class TestTraceEndpoint:
    def test_submit_echoes_a_trace_id(self, tmp_path):
        async def main():
            async with serve_app(tmp_path) as (_, client):
                response = await client.request(
                    "POST", "/v1/jobs", submit_body()
                )
                body = response.json()
                assert isinstance(body["trace_id"], str)
                assert len(body["trace_id"]) == 16
                await finish_job(client, body["id"])
                final = await client.request("GET", f"/v1/jobs/{body['id']}")
                assert final.json()["trace_id"] == body["trace_id"]

        run(main())

    def test_trace_of_queued_job_is_409(self, tmp_path):
        async def main():
            # Zero pool polling would race here; instead ask for the
            # trace in the tiny window before the first dispatch tick by
            # submitting and fetching in the same loop iteration.
            async with serve_app(tmp_path, poll_interval=5.0) as (_, client):
                submitted = await client.request(
                    "POST", "/v1/jobs", submit_body()
                )
                job_id = submitted.json()["id"]
                response = await client.request(
                    "GET", f"/v1/jobs/{job_id}/trace"
                )
                if response.status == 409:
                    assert (
                        response.json()["error"]["reason"] == "job-not-terminal"
                    )
                else:
                    # Lost the race: the job already finished — that
                    # response must then be the merged trace.
                    assert response.status == 200
                await finish_job(client, job_id)

        run(main())

    def test_terminal_trace_is_one_merged_timeline(self, tmp_path):
        async def main():
            async with serve_app(tmp_path) as (_, client):
                submitted = await client.request(
                    "POST", "/v1/jobs", submit_body()
                )
                body = submitted.json()
                await finish_job(client, body["id"])
                trace = await client.trace(body["id"])
                assert trace["trace_id"] == body["trace_id"]
                assert trace["tracing_enabled"] is True
                events = trace["traceEvents"]
                spans = [e for e in events if e.get("ph") == "X"]
                assert trace["spans"] == len(events)
                names = {e["name"] for e in spans}
                assert "serve/request" in names
                assert "serve/queue" in names
                trace_ids = {
                    e["args"].get("trace_id")
                    for e in spans
                    if "args" in e
                }
                assert trace_ids == {body["trace_id"]}

        run(main())

    def test_trace_disabled_daemon_still_answers(self, tmp_path):
        async def main():
            async with serve_app(tmp_path, trace=False) as (_, client):
                submitted = await client.request(
                    "POST", "/v1/jobs", submit_body()
                )
                body = submitted.json()
                assert body["trace_id"]  # correlation id even without spans
                await finish_job(client, body["id"])
                trace = await client.trace(body["id"])
                assert trace["tracing_enabled"] is False
                assert trace["traceEvents"] == []

        run(main())


class TestFlightEndpoint:
    def test_flight_returns_the_ring(self, tmp_path):
        async def main():
            async with serve_app(tmp_path) as (_, client):
                submitted = await client.request(
                    "POST", "/v1/jobs", submit_body()
                )
                await finish_job(client, submitted.json()["id"])
                flight = await client.flight()
                assert flight["capacity"] > 0
                assert flight["recorded"] >= len(flight["records"]) > 0
                kinds = {
                    r.get("kind") for r in flight["records"] if "kind" in r
                }
                assert "queued" in kinds  # lifecycle events feed the ring

        run(main())

    def test_flight_capacity_is_configurable(self, tmp_path):
        async def main():
            async with serve_app(tmp_path, flight_capacity=16) as (_, client):
                flight = await client.flight()
                assert flight["capacity"] == 16

        run(main())


class TestQueueWait:
    def test_describe_reports_queue_wait(self, tmp_path):
        async def main():
            async with serve_app(tmp_path) as (_, client):
                submitted = await client.request(
                    "POST", "/v1/jobs", submit_body()
                )
                job_id = submitted.json()["id"]
                await finish_job(client, job_id)
                final = (
                    await client.request("GET", f"/v1/jobs/{job_id}")
                ).json()
                assert final["queue_wait_seconds"] >= 0.0

        run(main())

    def test_slo_histograms_export(self, tmp_path):
        async def main():
            async with serve_app(tmp_path) as (_, client):
                submitted = await client.request(
                    "POST", "/v1/jobs", submit_body()
                )
                await finish_job(client, submitted.json()["id"])
                metrics = await client.request("GET", "/metrics")
                text = metrics.body.decode()
                assert 'serve_queue_wait_seconds_bucket{family="nsdp"' in text
                assert "serve_search_seconds_count" in text
                assert "serve_serialize_seconds_count" in text

        run(main())

    def test_healthz_reports_tracing(self, tmp_path):
        async def main():
            async with serve_app(tmp_path, trace=False) as (_, client):
                health = await client.request("GET", "/healthz")
                assert health.json()["trace"] is False

        run(main())
