"""End-to-end daemon tests: a real ServeApp on a real socket.

Each test runs its own event loop (plain ``asyncio.run``) with the app
bound to an ephemeral port.  Tests that need a job to *stay* running
register a sleeper analyzer in :data:`repro.engine.jobs.ANALYZERS`
before submitting — worker processes are forked, so they inherit the
registration — and rely on cancellation (not sleeping out the clock) to
finish, so the suite has no real waits.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from typing import Any, AsyncIterator

import pytest

from repro.engine.events import EVENT_SCHEMA_VERSION
from repro.serve.protocol import API_VERSION
from repro.engine.jobs import ANALYZERS
from repro.models import nsdp
from repro.net.parser import to_text
from repro.serve import ServeApp, ServeClient, ServeConfig

#: Upper bound on any single test's event loop; generous because CI
#: machines fork slowly, but every wait below is event-driven.
TEST_TIMEOUT = 60.0


def run(coro: Any) -> Any:
    return asyncio.run(asyncio.wait_for(coro, TEST_TIMEOUT))


@contextlib.asynccontextmanager
async def serve_app(
    tmp_path: Any, **overrides: Any
) -> AsyncIterator[tuple[ServeApp, ServeClient]]:
    settings: dict[str, Any] = dict(
        host="127.0.0.1",
        port=0,
        workers=2,
        cache_dir=str(tmp_path / "serve-cache"),
        poll_interval=0.01,
    )
    settings.update(overrides)
    app = ServeApp(ServeConfig(**settings))
    await app.start()
    try:
        yield app, ServeClient("127.0.0.1", app.port)
    finally:
        await app.stop()


def _sleeper_analyze(net: Any, **kwargs: Any) -> Any:
    time.sleep(60)
    raise RuntimeError("sleeper was not preempted")


@pytest.fixture
def sleeper_method():
    """Register an analyzer that blocks until killed (forked workers inherit)."""
    ANALYZERS["sleeper"] = _sleeper_analyze
    try:
        yield "sleeper"
    finally:
        del ANALYZERS["sleeper"]


def submit_body(**overrides: Any) -> dict[str, Any]:
    body: dict[str, Any] = {
        "net": to_text(nsdp(2)),
        "method": "gpo",
        "tenant": "tests",
    }
    body.update(overrides)
    return body


async def wait_started(client: ServeClient, job_id: str) -> None:
    """Block (event-driven) until the job's worker process has started."""
    stream = client.stream_events(job_id)
    try:
        async for event in stream:
            if event["kind"] in ("started", "cache_hit"):
                return
    finally:
        await stream.aclose()


class TestLifecycle:
    def test_submit_to_verdict(self, tmp_path):
        async def main():
            async with serve_app(tmp_path) as (_, client):
                response = await client.request(
                    "POST", "/v1/jobs", submit_body()
                )
                assert response.status == 202
                body = response.json()
                assert body["state"] == "queued"
                assert body["cached"] is False

                kinds = []
                async for event in client.stream_events(body["id"]):
                    kinds.append(event["kind"])
                    assert event["v"] == EVENT_SCHEMA_VERSION
                    assert event["job_id"] == body["id"]
                assert kinds == ["queued", "started", "finished"]

                status = await client.request("GET", f"/v1/jobs/{body['id']}")
                final = status.json()
                assert final["state"] == "done"
                assert final["engine_status"] == "ok"
                assert final["verdict"] == "DEADLOCK"
                assert final["result"]["deadlock"] is True

        run(main())

    def test_event_stream_schema_header(self, tmp_path):
        async def main():
            async with serve_app(tmp_path) as (_, client):
                submitted = await client.request(
                    "POST", "/v1/jobs", submit_body()
                )
                job_id = submitted.json()["id"]
                async for _ in client.stream_events(job_id):
                    pass
                # Replay of a finished job's stream carries the header and
                # terminates immediately.
                replay = await client.request(
                    "GET", f"/v1/jobs/{job_id}/events"
                )
                assert replay.headers["x-event-schema-version"] == str(
                    EVENT_SCHEMA_VERSION
                )
                lines = [l for l in replay.body.split(b"\n") if l.strip()]
                assert len(lines) == 3

        run(main())

    def test_cache_fast_path(self, tmp_path):
        async def main():
            async with serve_app(tmp_path) as (app, client):
                first = await client.request("POST", "/v1/jobs", submit_body())
                async for _ in client.stream_events(first.json()["id"]):
                    pass
                second = await client.request("POST", "/v1/jobs", submit_body())
                assert second.status == 200  # synchronous answer
                body = second.json()
                assert body["cached"] is True
                assert body["state"] == "done"
                assert body["engine_status"] == "cached"
                assert body["verdict"] == "DEADLOCK"
                assert app.cache is not None and app.cache.hits >= 1

        run(main())


class TestCancellation:
    def test_cancel_running_job(self, tmp_path, sleeper_method):
        async def main():
            async with serve_app(tmp_path, workers=1) as (_, client):
                submitted = await client.request(
                    "POST", "/v1/jobs", submit_body(method=sleeper_method)
                )
                job_id = submitted.json()["id"]
                await wait_started(client, job_id)
                cancelled = await client.request(
                    "DELETE", f"/v1/jobs/{job_id}"
                )
                assert cancelled.status == 200
                body = cancelled.json()
                assert body["state"] == "cancelled"
                assert body["engine_status"] == "cancelled"

        run(main())

    def test_cancel_queued_job(self, tmp_path, sleeper_method):
        async def main():
            async with serve_app(tmp_path, workers=1) as (_, client):
                blocker = await client.request(
                    "POST", "/v1/jobs", submit_body(method=sleeper_method)
                )
                await wait_started(client, blocker.json()["id"])
                # The single worker is now occupied: this one stays queued.
                queued = await client.request(
                    "POST", "/v1/jobs", submit_body(method=sleeper_method)
                )
                assert queued.json()["state"] == "queued"
                cancelled = await client.request(
                    "DELETE", f"/v1/jobs/{queued.json()['id']}"
                )
                assert cancelled.status == 200
                assert cancelled.json()["state"] == "cancelled"
                # No engine outcome exists for a never-started job.
                assert "engine_status" not in cancelled.json()
                # Clean up the blocker so shutdown is instant.
                await client.request(
                    "DELETE", f"/v1/jobs/{blocker.json()['id']}"
                )

        run(main())

    def test_cancel_is_idempotent(self, tmp_path):
        async def main():
            async with serve_app(tmp_path) as (_, client):
                submitted = await client.request(
                    "POST", "/v1/jobs", submit_body()
                )
                job_id = submitted.json()["id"]
                async for _ in client.stream_events(job_id):
                    pass
                # Cancelling a finished job is a no-op 200.
                response = await client.request("DELETE", f"/v1/jobs/{job_id}")
                assert response.status == 200
                assert response.json()["state"] == "done"

        run(main())


class TestBackpressure:
    def test_queue_full_gives_429_retry_after(self, tmp_path, sleeper_method):
        async def main():
            async with serve_app(
                tmp_path, workers=1, queue_capacity=2, use_cache=False
            ) as (_, client):
                blocker = await client.request(
                    "POST", "/v1/jobs", submit_body(method=sleeper_method)
                )
                await wait_started(client, blocker.json()["id"])
                queued = []
                for _ in range(2):
                    response = await client.request(
                        "POST", "/v1/jobs", submit_body(method=sleeper_method)
                    )
                    assert response.status == 202
                    queued.append(response.json()["id"])
                rejected = await client.request(
                    "POST", "/v1/jobs", submit_body(method=sleeper_method)
                )
                assert rejected.status == 429
                error = rejected.json()["error"]
                assert error["reason"] == "queue-full"
                assert int(rejected.headers["retry-after"]) >= 1
                for job_id in [blocker.json()["id"], *queued]:
                    await client.request("DELETE", f"/v1/jobs/{job_id}")

        run(main())

    def test_tenant_quota_gives_429(self, tmp_path, sleeper_method):
        async def main():
            async with serve_app(
                tmp_path, workers=1, tenant_quota=1, use_cache=False
            ) as (_, client):
                blocker = await client.request(
                    "POST", "/v1/jobs", submit_body(method=sleeper_method)
                )
                await wait_started(client, blocker.json()["id"])
                first = await client.request(
                    "POST",
                    "/v1/jobs",
                    submit_body(method=sleeper_method, tenant="greedy"),
                )
                assert first.status == 202
                second = await client.request(
                    "POST",
                    "/v1/jobs",
                    submit_body(method=sleeper_method, tenant="greedy"),
                )
                assert second.status == 429
                assert second.json()["error"]["reason"] == "tenant-full"
                # An unrelated tenant is still admitted.
                other = await client.request(
                    "POST",
                    "/v1/jobs",
                    submit_body(method=sleeper_method, tenant="polite"),
                )
                assert other.status == 202
                for job_id in [
                    blocker.json()["id"],
                    first.json()["id"],
                    other.json()["id"],
                ]:
                    await client.request("DELETE", f"/v1/jobs/{job_id}")

        run(main())


class TestHttpSurface:
    def test_structured_errors_never_tracebacks(self, tmp_path):
        async def main():
            async with serve_app(tmp_path) as (_, client):
                cases = [
                    ("GET", "/v1/jobs/doesnotexist", None, 404, "unknown-job"),
                    ("GET", "/nope", None, 404, "not-found"),
                    ("POST", "/v1/jobs", {"net": "%%%"}, 400, "parse-error"),
                    ("POST", "/v1/jobs", {}, 400, "bad-request"),
                ]
                for method, path, body, status, reason in cases:
                    response = await client.request(method, path, body)
                    assert response.status == status, (method, path)
                    error = response.json()["error"]
                    assert error["reason"] == reason
                    assert b"Traceback" not in response.body

        run(main())

    def test_unsupported_method_is_405(self, tmp_path):
        async def main():
            async with serve_app(tmp_path) as (_, client):
                response = await client.request("PUT", "/v1/jobs")
                assert response.status == 405
                assert response.json()["error"]["reason"] == "method-not-allowed"

        run(main())

    def test_oversized_body_is_413(self, tmp_path):
        async def main():
            async with serve_app(tmp_path, max_body_bytes=128) as (_, client):
                response = await client.request(
                    "POST", "/v1/jobs", submit_body()
                )
                assert response.status == 413
                assert response.json()["error"]["reason"] == "body-too-large"

        run(main())

    def test_healthz_reports_versions_and_load(self, tmp_path):
        async def main():
            async with serve_app(tmp_path) as (_, client):
                response = await client.request("GET", "/healthz")
                assert response.status == 200
                body = response.json()
                assert body["status"] == "ok"
                assert body["service"] == "gpo-serve"
                assert body["version"]
                assert body["event_schema_version"] == EVENT_SCHEMA_VERSION
                assert body["workers"] == 2
                assert body["queue"]["capacity"] == 256
                assert body["cache"]["enabled"] is True

        run(main())

    def test_metrics_exposition(self, tmp_path):
        async def main():
            async with serve_app(tmp_path) as (_, client):
                submitted = await client.request(
                    "POST", "/v1/jobs", submit_body()
                )
                async for _ in client.stream_events(submitted.json()["id"]):
                    pass
                response = await client.request("GET", "/metrics")
                assert response.status == 200
                text = response.body.decode("utf-8")
                assert "serve_submitted_total 1" in text
                assert 'serve_jobs_total{outcome="done"} 1' in text
                assert "serve_http_requests_total" in text
                assert "serve_job_wall_seconds" in text

        run(main())


class TestPropertySubmissions:
    def test_property_submit_to_verdict(self, tmp_path):
        async def main():
            async with serve_app(tmp_path) as (_, client):
                response = await client.request(
                    "POST",
                    "/v1/jobs",
                    submit_body(
                        property="reachable(eat0 & eat1)", method="symbolic"
                    ),
                )
                assert response.status == 202
                body = response.json()
                assert body["query"] == "reachable(eat0 & eat1)"
                record = await wait_done(client, body["id"])
                assert record["verdict"] == "property violated"
                extras = record["result"]["extras"]
                assert extras["property"] == "reachable(eat0 & eat1)"
                assert extras["property_holds"] is False

        run(main())

    def test_property_cache_fast_path_distinct_from_deadlock(self, tmp_path):
        async def main():
            async with serve_app(tmp_path, workers=1) as (_, client):
                prop_body = submit_body(
                    property="reachable(eat0)", method="full"
                )
                first = await client.request("POST", "/v1/jobs", prop_body)
                await wait_done(client, first.json()["id"])

                # Same (net, method, budget) but the deadlock question:
                # must NOT hit the property run's cache entry.
                dead = await client.request(
                    "POST", "/v1/jobs", submit_body(method="full")
                )
                assert dead.json()["cached"] is False
                await wait_done(client, dead.json()["id"])

                # Textual variant of the property: synchronous warm hit.
                warm = await client.request(
                    "POST",
                    "/v1/jobs",
                    submit_body(property="reachable(eat0)", method="full"),
                )
                assert warm.status == 200
                body = warm.json()
                assert body["cached"] is True
                assert body["result"]["extras"]["property_holds"] is True

        run(main())

    def test_incompatible_property_rejected_on_the_wire(self, tmp_path):
        async def main():
            async with serve_app(tmp_path) as (_, client):
                response = await client.request(
                    "POST",
                    "/v1/jobs",
                    submit_body(property="reachable(eat0)", method="stubborn"),
                )
                assert response.status == 400
                assert (
                    response.json()["error"]["reason"]
                    == "unsupported-property"
                )

        run(main())

    def test_healthz_reports_protocol_version(self, tmp_path):
        async def main():
            async with serve_app(tmp_path) as (_, client):
                response = await client.request("GET", "/healthz")
                assert response.json()["protocol_version"] == API_VERSION

        run(main())


async def wait_done(client: ServeClient, job_id: str) -> dict[str, Any]:
    while True:
        response = await client.request("GET", f"/v1/jobs/{job_id}")
        body = response.json()
        if body["state"] in ("done", "cancelled", "failed"):
            return body
        await asyncio.sleep(0.01)
