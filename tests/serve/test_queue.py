"""TenantQueue: priority ordering, tenant fairness, quotas, removal."""

from __future__ import annotations

import pytest

from repro.serve.queue import QueueFull, TenantQueue


def drain(queue: TenantQueue) -> list[str]:
    out = []
    while True:
        job_id = queue.pop()
        if job_id is None:
            return out
        out.append(job_id)


class TestOrdering:
    def test_fifo_within_one_tenant(self):
        queue = TenantQueue()
        for i in range(5):
            queue.push(f"j{i}", tenant="t")
        assert drain(queue) == [f"j{i}" for i in range(5)]

    def test_higher_priority_first(self):
        queue = TenantQueue()
        queue.push("low", tenant="t", priority=-5)
        queue.push("mid", tenant="t", priority=0)
        queue.push("high", tenant="t", priority=7)
        assert drain(queue) == ["high", "mid", "low"]

    def test_priority_beats_arrival_order(self):
        queue = TenantQueue()
        queue.push("first", tenant="t")
        queue.push("vip", tenant="u", priority=1)
        assert queue.pop() == "vip"
        assert queue.pop() == "first"

    def test_pop_empty_returns_none(self):
        assert TenantQueue().pop() is None
        assert len(TenantQueue()) == 0


class TestFairness:
    def test_round_robin_between_tenants(self):
        queue = TenantQueue()
        for i in range(3):
            queue.push(f"a{i}", tenant="a")
            queue.push(f"b{i}", tenant="b")
        assert drain(queue) == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_flooding_tenant_does_not_starve_others(self):
        """A noisy neighbour with 10 queued jobs still takes strict turns."""
        queue = TenantQueue()
        for i in range(10):
            queue.push(f"noisy{i}", tenant="noisy")
        queue.push("quiet0", tenant="quiet")
        order = drain(queue)
        # The quiet tenant's single job runs second, not eleventh.
        assert order.index("quiet0") == 1

    def test_fairness_is_per_priority_level(self):
        queue = TenantQueue()
        queue.push("a-high", tenant="a", priority=1)
        queue.push("b-low", tenant="b", priority=0)
        queue.push("a-low", tenant="a", priority=0)
        # Priority dominates fairness; within level 0 b arrived first.
        assert drain(queue) == ["a-high", "b-low", "a-low"]


class TestAdmission:
    def test_global_capacity(self):
        queue = TenantQueue(capacity=2, tenant_quota=10)
        queue.push("a", tenant="t1")
        queue.push("b", tenant="t2")
        with pytest.raises(QueueFull) as excinfo:
            queue.push("c", tenant="t3")
        assert excinfo.value.scope == "queue"
        assert 1 <= excinfo.value.retry_after <= 60

    def test_tenant_quota(self):
        queue = TenantQueue(capacity=100, tenant_quota=2)
        queue.push("a", tenant="greedy")
        queue.push("b", tenant="greedy")
        with pytest.raises(QueueFull) as excinfo:
            queue.push("c", tenant="greedy")
        assert excinfo.value.scope == "tenant"
        # Other tenants are unaffected by one tenant's full slice.
        queue.push("d", tenant="polite")
        assert queue.depth_of("greedy") == 2
        assert queue.depth_of("polite") == 1

    def test_pop_frees_quota(self):
        queue = TenantQueue(capacity=100, tenant_quota=1)
        queue.push("a", tenant="t")
        with pytest.raises(QueueFull):
            queue.push("b", tenant="t")
        assert queue.pop() == "a"
        queue.push("b", tenant="t")  # quota released by the pop
        assert queue.depth_of("t") == 1

    def test_retry_after_scales_with_backlog(self):
        queue = TenantQueue(capacity=160, tenant_quota=160)
        assert queue.retry_after() == 1
        for i in range(100):
            queue.push(f"j{i}", tenant="t")
        assert 1 <= queue.retry_after() <= 60
        assert queue.retry_after() >= 10


class TestRemove:
    def test_remove_queued_job(self):
        queue = TenantQueue()
        queue.push("a", tenant="t")
        queue.push("b", tenant="t")
        assert queue.remove("a") is True
        assert len(queue) == 1
        assert drain(queue) == ["b"]

    def test_remove_unknown_is_false(self):
        queue = TenantQueue()
        queue.push("a", tenant="t")
        assert queue.remove("nope") is False
        assert len(queue) == 1

    def test_remove_last_job_of_tenant_clears_lane(self):
        queue = TenantQueue()
        queue.push("a", tenant="a")
        queue.push("b", tenant="b")
        assert queue.remove("a") is True
        # Tenant a's empty lane must not participate in round-robin.
        assert drain(queue) == ["b"]
        assert queue.depth_of("a") == 0

    def test_remove_frees_quota(self):
        queue = TenantQueue(capacity=10, tenant_quota=1)
        queue.push("a", tenant="t")
        assert queue.remove("a") is True
        queue.push("b", tenant="t")
        assert len(queue) == 1
