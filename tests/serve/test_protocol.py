"""Wire-protocol hardening: untrusted bodies become ApiError, never tracebacks."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.models import nsdp
from repro.net.parser import to_text
from repro.net.pnml import to_pnml
from repro.serve.config import ServeConfig
from repro.serve.protocol import ApiError, parse_submit, parse_wire_net

CONFIG = ServeConfig()


def submit_body(**overrides) -> bytes:
    body = {"net": to_text(nsdp(2)), "method": "gpo"}
    body.update(overrides)
    return json.dumps(body).encode("utf-8")


class TestParseWireNet:
    def test_native_roundtrip(self):
        net = parse_wire_net(to_text(nsdp(2)), "native", CONFIG)
        assert net.num_places == nsdp(2).num_places

    def test_pnml_roundtrip(self):
        net = parse_wire_net(to_pnml(nsdp(2)), "pnml", CONFIG)
        assert net.num_transitions == nsdp(2).num_transitions

    def test_auto_detects_pnml_by_leading_angle(self):
        net = parse_wire_net("  " + to_pnml(nsdp(2)), "auto", CONFIG)
        assert net.num_places == nsdp(2).num_places

    def test_auto_detects_native(self):
        net = parse_wire_net(to_text(nsdp(2)), "auto", CONFIG)
        assert net.num_places == nsdp(2).num_places

    def test_unknown_format_rejected(self):
        with pytest.raises(ApiError) as excinfo:
            parse_wire_net("net x", "yaml", CONFIG)
        assert excinfo.value.status == 400
        assert excinfo.value.reason == "bad-format"

    def test_byte_cap_applies_before_parsing(self):
        config = dataclasses.replace(CONFIG, max_net_bytes=16)
        with pytest.raises(ApiError) as excinfo:
            parse_wire_net(to_text(nsdp(4)), "native", config)
        assert excinfo.value.status == 413
        assert excinfo.value.reason == "net-too-large"

    def test_node_cap_applies_after_parsing(self):
        config = dataclasses.replace(CONFIG, max_net_nodes=3)
        with pytest.raises(ApiError) as excinfo:
            parse_wire_net(to_text(nsdp(4)), "native", config)
        assert excinfo.value.status == 413

    def test_garbage_is_a_structured_400(self):
        with pytest.raises(ApiError) as excinfo:
            parse_wire_net("%%% not a net %%%", "native", CONFIG)
        err = excinfo.value
        assert (err.status, err.reason) == (400, "parse-error")
        payload = err.payload()["error"]
        assert payload["status"] == 400
        assert "Traceback" not in payload.get("detail", "")


class TestParseSubmit:
    def test_minimal_valid_body(self):
        submit = parse_submit(submit_body(), CONFIG)
        assert submit.method == "gpo"
        assert submit.query == "deadlock"
        assert submit.tenant == "anonymous"
        assert submit.priority == 0
        assert submit.budget.max_states == CONFIG.default_max_states
        job = submit.to_job()
        assert job.method == "gpo"

    def test_not_json(self):
        with pytest.raises(ApiError) as excinfo:
            parse_submit(b"\xff\xfe{{{", CONFIG)
        assert excinfo.value.reason == "bad-json"

    def test_non_object_body(self):
        with pytest.raises(ApiError) as excinfo:
            parse_submit(b"[1, 2]", CONFIG)
        assert excinfo.value.reason == "bad-json"

    def test_missing_net(self):
        with pytest.raises(ApiError) as excinfo:
            parse_submit(b'{"method": "gpo"}', CONFIG)
        assert (excinfo.value.status, excinfo.value.reason) == (
            400, "bad-request",
        )

    def test_unknown_method(self):
        with pytest.raises(ApiError) as excinfo:
            parse_submit(submit_body(method="quantum"), CONFIG)
        assert excinfo.value.reason == "unknown-method"

    def test_unknown_query(self):
        with pytest.raises(ApiError) as excinfo:
            parse_submit(submit_body(query="liveness"), CONFIG)
        assert excinfo.value.reason == "unknown-query"

    def test_budget_clamped_to_server_caps(self):
        submit = parse_submit(
            submit_body(max_states=10**9, max_seconds=10**6), CONFIG
        )
        assert submit.budget.max_states == CONFIG.max_states_cap
        assert submit.budget.max_seconds == CONFIG.max_seconds_cap

    @pytest.mark.parametrize("value", [0, -3, "many", True, None])
    def test_bad_budget_rejected(self, value):
        with pytest.raises(ApiError) as excinfo:
            parse_submit(submit_body(max_states=value), CONFIG)
        assert excinfo.value.status == 400

    def test_priority_clamped_not_rejected(self):
        assert parse_submit(submit_body(priority=10**6), CONFIG).priority == 100
        assert parse_submit(submit_body(priority=-(10**6)), CONFIG).priority == -100

    def test_non_integer_priority_rejected(self):
        with pytest.raises(ApiError):
            parse_submit(submit_body(priority="urgent"), CONFIG)
        with pytest.raises(ApiError):
            parse_submit(submit_body(priority=True), CONFIG)

    def test_tenant_validation(self):
        assert parse_submit(submit_body(tenant="team-a.prod_1"), CONFIG).tenant \
            == "team-a.prod_1"
        for bad in ["", "a" * 65, "has space", "semi;colon", 42]:
            with pytest.raises(ApiError):
                parse_submit(submit_body(tenant=bad), CONFIG)

    def test_retry_after_surfaces_in_payload(self):
        err = ApiError(429, "queue-full", "busy", retry_after=7)
        assert err.payload()["error"]["retry_after"] == 7


class TestPropertyField:
    """The v2 ``property`` field: canonicalized, place-checked, screened."""

    def test_property_canonicalized_into_query(self):
        submit = parse_submit(
            submit_body(property="reachable(eat1 & eat0)", method="full"),
            CONFIG,
        )
        assert submit.query == "reachable(eat0 & eat1)"
        assert submit.to_job().query == "reachable(eat0 & eat1)"

    def test_absent_property_keeps_the_deadlock_question(self):
        assert parse_submit(submit_body(), CONFIG).query == "deadlock"

    @pytest.mark.parametrize(
        "value", ["", "   ", "reachable(", "reachable(nope)", 7, ["x"]]
    )
    def test_bad_property_rejected(self, value):
        with pytest.raises(ApiError) as excinfo:
            parse_submit(
                submit_body(property=value, method="full"), CONFIG
            )
        assert excinfo.value.status == 400
        assert excinfo.value.reason == "bad-property"

    def test_oversized_property_rejected(self):
        with pytest.raises(ApiError) as excinfo:
            parse_submit(
                submit_body(property="reachable(" + "a & " * 4096 + "b)"),
                CONFIG,
            )
        assert excinfo.value.reason == "bad-property"

    def test_incompatible_method_screened_at_admission(self):
        with pytest.raises(ApiError) as excinfo:
            parse_submit(
                submit_body(property="reachable(eat0)", method="stubborn"),
                CONFIG,
            )
        assert excinfo.value.status == 400
        assert excinfo.value.reason == "unsupported-property"
        assert "deadlocks only" in excinfo.value.detail

    def test_safety_question_is_not_an_engine_job(self):
        with pytest.raises(ApiError) as excinfo:
            parse_submit(submit_body(property="safe", method="full"), CONFIG)
        assert excinfo.value.reason == "unsupported-property"

    def test_api_version_exported(self):
        from repro.serve.protocol import API_VERSION

        assert API_VERSION >= 4

    def test_reduce_defaults_off(self):
        submit = parse_submit(submit_body(), CONFIG)
        assert submit.reduce == "off"
        assert submit.to_job().reduce == "off"

    @pytest.mark.parametrize("mode", ["auto", "aggressive"])
    def test_reduce_accepted_and_threaded_to_job(self, mode):
        submit = parse_submit(submit_body(reduce=mode), CONFIG)
        assert submit.reduce == mode
        assert submit.to_job().reduce == mode

    @pytest.mark.parametrize("value", ["yes", "", 1, True, ["auto"]])
    def test_bad_reduce_rejected(self, value):
        with pytest.raises(ApiError) as excinfo:
            parse_submit(submit_body(reduce=value), CONFIG)
        assert excinfo.value.status == 400
        assert excinfo.value.reason == "bad-reduce"
