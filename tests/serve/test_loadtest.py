"""Loadtest harness: deterministic workloads, differential verdicts, report shape."""

from __future__ import annotations

import asyncio

from repro.serve import ServeApp, ServeConfig
from repro.serve.loadtest import (
    LoadtestConfig,
    _build_workload,
    format_report,
    mismatch_count,
    quick_config,
    run_loadtest,
    write_report,
)


class TestWorkload:
    def test_same_seed_same_workload(self):
        config = quick_config("h", 1, requests=12)
        first = _build_workload(config)
        second = _build_workload(config)
        assert [s.body for s in first] == [s.body for s in second]

    def test_mixed_formats_and_methods(self):
        config = quick_config("h", 1, requests=40)
        specs = _build_workload(config)
        assert {s.fmt for s in specs} == {"native", "pnml"}
        assert len({s.method for s in specs}) > 1
        assert all(s.tenant.startswith("tenant-") for s in specs)

    def test_skew_pins_tenant_zero(self):
        config = quick_config("h", 1, requests=50, skew=1.0)
        assert {s.tenant for s in _build_workload(config)} == {"tenant-0"}


class TestEndToEnd:
    def test_loadtest_against_live_server(self, tmp_path):
        async def main():
            app = ServeApp(
                ServeConfig(
                    port=0,
                    workers=2,
                    cache_dir=str(tmp_path / "cache"),
                    poll_interval=0.01,
                )
            )
            await app.start()
            try:
                config = quick_config(
                    "127.0.0.1",
                    app.port,
                    requests=10,
                    concurrency=4,
                    repeat=2,
                    poll_interval=0.01,
                )
                return await run_loadtest(config)
            finally:
                await app.stop()

        report = asyncio.run(asyncio.wait_for(main(), 120))
        assert mismatch_count(report) == 0
        cold, warm = report["phases"]
        assert cold["phase"] == "cold" and warm["phase"] == "warm-1"
        assert cold["completed"] == 10 and warm["completed"] == 10
        # Identical replay: every warm request hits the shared cache.
        assert warm["cache_hit_rate"] > 0.9
        for phase in (cold, warm):
            assert phase["latency_seconds"]["p99"] >= phase["latency_seconds"]["p50"]
            assert phase["throughput_rps"] > 0

        text = format_report(report)
        assert "[cold]" in text and "[warm-1]" in text and "p99=" in text

        out = tmp_path / "BENCH_serve.json"
        write_report(report, str(out))
        assert out.exists() and out.read_text().startswith("{")

    def test_unverified_run_skips_ground_truth(self, tmp_path):
        async def main():
            app = ServeApp(
                ServeConfig(
                    port=0, workers=1,
                    cache_dir=str(tmp_path / "cache"),
                    poll_interval=0.01,
                )
            )
            await app.start()
            try:
                config = LoadtestConfig(
                    host="127.0.0.1",
                    port=app.port,
                    requests=4,
                    concurrency=2,
                    families=("NSDP",),
                    methods=("gpo",),
                    sizes={"NSDP": (2,)},
                    verify=False,
                    poll_interval=0.01,
                )
                return await run_loadtest(config)
            finally:
                await app.stop()

        report = asyncio.run(asyncio.wait_for(main(), 60))
        assert report["config"]["verified"] is False
        assert mismatch_count(report) == 0


class TestPropertyWorkload:
    def test_property_mix_draws_compatible_pairs(self):
        config = quick_config("h", 1, requests=60, property_mix=0.6)
        specs = _build_workload(config)
        with_prop = [s for s in specs if "property" in s.body]
        assert with_prop, "0.6 mix over 60 requests must draw properties"
        # Key carries the query; methods are pre-filtered by the
        # preservation matrix before drawing.
        from repro.props.compat import filter_methods
        from repro.props.eval import as_property

        for spec in with_prop:
            assert spec.key[3] == spec.body["property"]
            kept, _ = filter_methods(
                config.methods, as_property(spec.body["property"])
            )
            assert spec.method in kept
        for spec in specs:
            if "property" not in spec.body:
                assert spec.key[3] == "deadlock"

    def test_zero_mix_is_pure_deadlock(self):
        config = quick_config("h", 1, requests=30, property_mix=0.0)
        assert all(
            s.key[3] == "deadlock" and "property" not in s.body
            for s in _build_workload(config)
        )

    def test_live_property_loadtest_no_mismatches(self, tmp_path):
        async def main():
            app = ServeApp(
                ServeConfig(
                    port=0,
                    workers=2,
                    cache_dir=str(tmp_path / "cache"),
                    poll_interval=0.01,
                )
            )
            await app.start()
            try:
                config = quick_config(
                    "127.0.0.1",
                    app.port,
                    requests=12,
                    concurrency=4,
                    property_mix=0.5,
                    poll_interval=0.01,
                )
                return await run_loadtest(config)
            finally:
                await app.stop()

        report = asyncio.run(asyncio.wait_for(main(), 120))
        assert report["config"]["property_mix"] == 0.5
        assert mismatch_count(report) == 0
        (phase,) = report["phases"]
        assert phase["completed"] == 12
