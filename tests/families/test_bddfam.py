"""Unit tests for the BDD-backed set-family backend."""

import pytest

from repro.families import BddContext


@pytest.fixture
def ctx():
    return BddContext(4)


def fam(ctx, *sets):
    return ctx.from_sets(frozenset(s) for s in sets)


class TestConstruction:
    def test_empty(self, ctx):
        assert ctx.empty().is_empty()
        assert ctx.empty().count() == 0

    def test_singleton_exact(self, ctx):
        family = ctx.singleton(frozenset({1, 3}))
        assert family.count() == 1
        assert family.contains(frozenset({1, 3}))
        assert not family.contains(frozenset({1}))
        assert not family.contains(frozenset({0, 1, 3}))

    def test_out_of_universe_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.level_of(4)


class TestAlgebra:
    def test_ops_match_explicit_semantics(self, ctx):
        left = fam(ctx, {0}, {1, 2})
        right = fam(ctx, {1, 2}, {3})
        assert left.union(right).count() == 3
        assert left.intersect(right).as_frozensets() == frozenset(
            {frozenset({1, 2})}
        )
        assert left.difference(right).as_frozensets() == frozenset(
            {frozenset({0})}
        )

    def test_filter_contains(self, ctx):
        family = fam(ctx, {0, 1}, {1, 2}, {3})
        filtered = family.filter_contains(1)
        assert filtered.as_frozensets() == frozenset(
            {frozenset({0, 1}), frozenset({1, 2})}
        )

    def test_is_subset(self, ctx):
        assert fam(ctx, {1}).is_subset(fam(ctx, {1}, {2}))
        assert not fam(ctx, {0}).is_subset(fam(ctx, {1}))


class TestValueSemantics:
    def test_canonical_equality(self, ctx):
        # Same family built two ways -> same BDD node.
        one = fam(ctx, {0}, {1}).union(fam(ctx, {2}))
        two = fam(ctx, {2}, {1}, {0})
        assert one == two
        assert hash(one) == hash(two)

    def test_cross_context_not_equal(self):
        a, b = BddContext(3), BddContext(3)
        assert a.singleton(frozenset({0})) != b.singleton(frozenset({0}))

    def test_repr_contains_size(self, ctx):
        assert "|F|=2" in repr(fam(ctx, {0}, {1}))


class TestQueries:
    def test_iter_and_any(self, ctx):
        family = fam(ctx, {0, 2}, {1})
        sets = set(family.iter_sets())
        assert sets == {frozenset({0, 2}), frozenset({1})}
        assert family.any_set() in sets
        assert ctx.empty().any_set() is None

    def test_iter_limit(self, ctx):
        family = fam(ctx, {0}, {1}, {2}, {3})
        assert len(list(family.iter_sets(limit=3))) == 3


class TestMaximalIndependentSets:
    def test_matches_explicit_backend(self):
        from repro.families import ExplicitContext

        adjacency = [{1, 2}, {0}, {0, 3}, {2}, set()]
        bdd_ctx = BddContext(5)
        exp_ctx = ExplicitContext(5)
        bdd_mis = bdd_ctx.maximal_independent_sets(adjacency)
        exp_mis = exp_ctx.maximal_independent_sets(adjacency)
        assert bdd_mis.as_frozensets() == exp_mis.as_frozensets()

    def test_scales_symbolically(self):
        # 20 disjoint conflict pairs: 2^20 maximal independent sets, far
        # beyond explicit enumeration, counted without materializing.
        n = 40
        adjacency = []
        for i in range(0, n, 2):
            adjacency.append({i + 1})
            adjacency.append({i})
        ctx = BddContext(n)
        mis = ctx.maximal_independent_sets(adjacency)
        assert mis.count() == 2 ** (n // 2)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BddContext(2).maximal_independent_sets([set()])
