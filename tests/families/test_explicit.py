"""Unit tests for the explicit set-family backend."""

import pytest

from repro.families import ExplicitContext


@pytest.fixture
def ctx():
    return ExplicitContext(4)


def fam(ctx, *sets):
    return ctx.from_sets(frozenset(s) for s in sets)


class TestConstruction:
    def test_empty(self, ctx):
        family = ctx.empty()
        assert family.is_empty()
        assert family.count() == 0
        assert not family

    def test_singleton(self, ctx):
        family = ctx.singleton(frozenset({0, 2}))
        assert family.count() == 1
        assert family.contains(frozenset({0, 2}))
        assert not family.contains(frozenset({0}))

    def test_from_sets_dedups(self, ctx):
        family = fam(ctx, {0}, {0}, {1})
        assert family.count() == 2

    def test_out_of_universe_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.singleton(frozenset({9}))
        with pytest.raises(ValueError):
            ctx.from_sets([frozenset({4})])


class TestAlgebra:
    def test_union_intersect_difference(self, ctx):
        left = fam(ctx, {0}, {1})
        right = fam(ctx, {1}, {2})
        assert left.union(right).count() == 3
        assert left.intersect(right) == fam(ctx, {1})
        assert left.difference(right) == fam(ctx, {0})

    def test_filter_contains(self, ctx):
        family = fam(ctx, {0, 1}, {1, 2}, {2, 3})
        assert family.filter_contains(1) == fam(ctx, {0, 1}, {1, 2})
        assert family.filter_contains(0).count() == 1

    def test_is_subset(self, ctx):
        small = fam(ctx, {1})
        big = fam(ctx, {1}, {2})
        assert small.is_subset(big)
        assert not big.is_subset(small)

    def test_union_all_intersect_all(self, ctx):
        families = [fam(ctx, {0}), fam(ctx, {1}), fam(ctx, {0})]
        assert ctx.union_all(families).count() == 2
        common = [fam(ctx, {0}, {1}), fam(ctx, {1}, {2})]
        assert ctx.intersect_all(common) == fam(ctx, {1})
        with pytest.raises(ValueError):
            ctx.intersect_all([])


class TestQueries:
    def test_iter_sets_deterministic(self, ctx):
        family = fam(ctx, {2}, {0, 1}, {1})
        assert list(family.iter_sets()) == list(family.iter_sets())

    def test_iter_limit(self, ctx):
        family = fam(ctx, {0}, {1}, {2})
        assert len(list(family.iter_sets(limit=2))) == 2

    def test_any_set(self, ctx):
        assert ctx.empty().any_set() is None
        family = fam(ctx, {1, 2})
        assert family.any_set() == frozenset({1, 2})

    def test_as_frozensets(self, ctx):
        family = fam(ctx, {0}, {1})
        assert family.as_frozensets() == frozenset(
            {frozenset({0}), frozenset({1})}
        )

    def test_hash_equality(self, ctx):
        assert fam(ctx, {0}, {1}) == fam(ctx, {1}, {0})
        assert hash(fam(ctx, {0})) == hash(fam(ctx, {0}))

    def test_repr_sorted(self, ctx):
        assert "ExplicitFamily" in repr(fam(ctx, {1, 0}))


class TestMaximalIndependentSets:
    def test_two_cliques(self):
        ctx = ExplicitContext(4)
        adjacency = [{1}, {0}, {3}, {2}]
        mis = ctx.maximal_independent_sets(adjacency)
        assert mis.as_frozensets() == frozenset(
            {
                frozenset({0, 2}),
                frozenset({0, 3}),
                frozenset({1, 2}),
                frozenset({1, 3}),
            }
        )

    def test_isolated_vertex_in_every_set(self):
        ctx = ExplicitContext(3)
        mis = ctx.maximal_independent_sets([{1}, {0}, set()])
        for v in mis.iter_sets():
            assert 2 in v

    def test_triangle(self):
        ctx = ExplicitContext(3)
        mis = ctx.maximal_independent_sets([{1, 2}, {0, 2}, {0, 1}])
        assert mis.as_frozensets() == frozenset(
            {frozenset({0}), frozenset({1}), frozenset({2})}
        )

    def test_path_graph(self):
        # path 0-1-2-3: MIS = {0,2}, {0,3}, {1,3}
        ctx = ExplicitContext(4)
        mis = ctx.maximal_independent_sets([{1}, {0, 2}, {1, 3}, {2}])
        assert mis.count() == 3

    def test_empty_graph_single_set(self):
        ctx = ExplicitContext(3)
        mis = ctx.maximal_independent_sets([set(), set(), set()])
        assert mis.as_frozensets() == frozenset({frozenset({0, 1, 2})})

    def test_size_mismatch_rejected(self):
        ctx = ExplicitContext(2)
        with pytest.raises(ValueError):
            ctx.maximal_independent_sets([set()])
