"""Property tests: the explicit and BDD family backends are equivalent.

Random sequences of family operations are executed against both backends
in lock-step; after every step the materialized set families must agree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.families import BddContext, ExplicitContext

UNIVERSE = 5


def subsets():
    return st.frozensets(
        st.integers(min_value=0, max_value=UNIVERSE - 1), max_size=UNIVERSE
    )


def families_raw():
    return st.frozensets(subsets(), max_size=6)


@given(left=families_raw(), right=families_raw())
@settings(max_examples=150, deadline=None)
def test_binary_ops_agree(left, right):
    exp_ctx = ExplicitContext(UNIVERSE)
    bdd_ctx = BddContext(UNIVERSE)
    exp_l, exp_r = exp_ctx.from_sets(left), exp_ctx.from_sets(right)
    bdd_l, bdd_r = bdd_ctx.from_sets(left), bdd_ctx.from_sets(right)

    for op in ("union", "intersect", "difference"):
        exp_result = getattr(exp_l, op)(exp_r)
        bdd_result = getattr(bdd_l, op)(bdd_r)
        assert exp_result.as_frozensets() == bdd_result.as_frozensets(), op
        assert exp_result.count() == bdd_result.count(), op
        assert exp_result.is_empty() == bdd_result.is_empty(), op


@given(family=families_raw(), t=st.integers(min_value=0, max_value=UNIVERSE - 1))
@settings(max_examples=150, deadline=None)
def test_filter_contains_agrees(family, t):
    exp = ExplicitContext(UNIVERSE).from_sets(family).filter_contains(t)
    bdd = BddContext(UNIVERSE).from_sets(family).filter_contains(t)
    assert exp.as_frozensets() == bdd.as_frozensets()


@given(family=families_raw(), probe=subsets())
@settings(max_examples=150, deadline=None)
def test_contains_agrees(family, probe):
    exp = ExplicitContext(UNIVERSE).from_sets(family)
    bdd = BddContext(UNIVERSE).from_sets(family)
    assert exp.contains(probe) == bdd.contains(probe)


@given(left=families_raw(), right=families_raw())
@settings(max_examples=150, deadline=None)
def test_subset_and_equality_agree(left, right):
    exp_ctx = ExplicitContext(UNIVERSE)
    bdd_ctx = BddContext(UNIVERSE)
    assert exp_ctx.from_sets(left).is_subset(
        exp_ctx.from_sets(right)
    ) == bdd_ctx.from_sets(left).is_subset(bdd_ctx.from_sets(right))
    assert (exp_ctx.from_sets(left) == exp_ctx.from_sets(right)) == (
        bdd_ctx.from_sets(left) == bdd_ctx.from_sets(right)
    )


@given(
    edges=st.sets(
        st.tuples(
            st.integers(min_value=0, max_value=UNIVERSE - 1),
            st.integers(min_value=0, max_value=UNIVERSE - 1),
        ).filter(lambda e: e[0] != e[1]),
        max_size=8,
    )
)
@settings(max_examples=150, deadline=None)
def test_maximal_independent_sets_agree(edges):
    adjacency = [set() for _ in range(UNIVERSE)]
    for u, v in edges:
        adjacency[u].add(v)
        adjacency[v].add(u)
    exp = ExplicitContext(UNIVERSE).maximal_independent_sets(adjacency)
    bdd = BddContext(UNIVERSE).maximal_independent_sets(adjacency)
    assert exp.as_frozensets() == bdd.as_frozensets()
    # Cross-check the defining property on the explicit result.
    for mis in exp.iter_sets():
        for u in mis:
            assert not (adjacency[u] & mis), "independence violated"
        for outside in set(range(UNIVERSE)) - mis:
            assert adjacency[outside] & mis, "maximality violated"
