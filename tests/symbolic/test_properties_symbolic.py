"""Property tests: the symbolic engine computes exactly the explicit
reachable set, and its deadlock verdict matches the explicit one."""

from hypothesis import HealthCheck, given, settings

from repro.analysis import explore, reachable_markings
from repro.net.exceptions import UnsafeNetError
from repro.symbolic import reach

from tests.conftest import safe_nets, state_machine_nets

COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(net=safe_nets(max_places=6, max_transitions=5))
@settings(**COMMON)
def test_reachable_set_identical_on_random_nets(net):
    try:
        explicit = reachable_markings(net, max_states=2000)
    except UnsafeNetError:
        return
    result = reach(net)
    assert result.num_states == len(explicit)
    for marking in explicit:
        assert result.contains(marking)


@given(net=state_machine_nets())
@settings(**COMMON)
def test_reachable_set_identical_on_state_machines(net):
    explicit = reachable_markings(net, max_states=5000)
    result = reach(net)
    assert result.num_states == len(explicit)


@given(net=state_machine_nets())
@settings(**COMMON)
def test_deadlock_verdict_matches_explicit(net):
    graph = explore(net, max_states=5000)
    result = reach(net)
    marking = result.deadlock_marking()
    assert (marking is not None) == bool(graph.deadlocks)
    if marking is not None:
        assert net.is_deadlocked(marking)
        assert marking in set(graph.states())
