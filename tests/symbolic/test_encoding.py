"""Tests for the Boolean encoding of safe nets."""

from repro.bdd import ZERO
from repro.models import choice_net, concurrent_net
from repro.symbolic import SymbolicNet


class TestVariableLayout:
    def test_interleaved_levels(self):
        symnet = SymbolicNet(choice_net(), use_force_order=False)
        for p in range(symnet.net.num_places):
            assert symnet.nxt[p] == symnet.current[p] + 1
        assert symnet.mgr.num_vars == 2 * symnet.net.num_places

    def test_force_order_still_interleaved(self):
        symnet = SymbolicNet(concurrent_net(4))
        assert sorted(symnet.current + symnet.nxt) == list(range(16))
        for p in range(8):
            assert symnet.nxt[p] == symnet.current[p] + 1


class TestEncodeDecode:
    def test_round_trip(self):
        net = choice_net()
        symnet = SymbolicNet(net)
        for names in (["p0"], ["p1"], ["p0", "p2"]):
            marking = net.marking_from_names(names)
            node = symnet.encode_marking(marking)
            from repro.bdd import any_model

            model = any_model(
                symnet.mgr, node, sorted(symnet.current_levels())
            )
            assert model is not None
            assert symnet.decode_model(model) == marking

    def test_single_marking_is_minterm(self):
        net = choice_net()
        symnet = SymbolicNet(net)
        from repro.bdd import satcount

        node = symnet.encode_marking(net.initial_marking)
        count = satcount(symnet.mgr, node, 2 * net.num_places)
        assert count == 2**net.num_places  # next vars unconstrained


class TestRelations:
    def test_relation_respects_firing(self):
        net = choice_net()
        symnet = SymbolicNet(net)
        a = net.transition_id("a")
        rel = symnet.relations[a]
        before = net.initial_marking
        after = net.fire(a, before)
        assignment = {}
        for p in range(net.num_places):
            assignment[symnet.current[p]] = p in before
            assignment[symnet.nxt[p]] = p in after
        assert symnet.mgr.evaluate(rel, assignment)
        # Wrong successor is rejected.
        assignment[symnet.nxt[net.place_id("p1")]] = False
        assert not symnet.mgr.evaluate(rel, assignment)

    def test_disabled_transition_has_no_step(self):
        net = choice_net()
        symnet = SymbolicNet(net)
        from repro.bdd import relprod

        empty = net.marking_from_names(["p1"])  # a, b disabled
        source = symnet.encode_marking(empty)
        for rel in symnet.relations:
            assert relprod(
                symnet.mgr, source, rel, symnet.current_levels()
            ) == ZERO

    def test_monolithic_cached(self):
        symnet = SymbolicNet(choice_net())
        assert symnet.monolithic_relation() == symnet.monolithic_relation()

    def test_next_to_current_is_monotone(self):
        symnet = SymbolicNet(concurrent_net(3))
        mapping = symnet.next_to_current()
        keys = sorted(mapping)
        values = [mapping[k] for k in keys]
        assert values == sorted(values)
