"""Tests for symbolic reachability and deadlock detection."""

import pytest

from repro.analysis import TimeLimitReached, reachable_markings
from repro.models import (
    choice_net,
    concurrent_net,
    conflict_pairs_net,
    nsdp,
    rw,
)
from repro.symbolic import analyze, reach


class TestReach:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: choice_net(),
            lambda: concurrent_net(4),
            lambda: conflict_pairs_net(3),
            lambda: nsdp(2),
            lambda: rw(3),
        ],
    )
    def test_state_count_matches_explicit(self, make):
        net = make()
        result = reach(net)
        assert result.num_states == len(reachable_markings(net))

    def test_contains(self):
        net = choice_net()
        result = reach(net)
        assert result.contains(net.initial_marking)
        assert result.contains(net.marking_from_names(["p1"]))
        assert not result.contains(net.marking_from_names(["p0", "p1"]))

    def test_iterations_is_bfs_depth(self):
        # A 3-step pipeline needs 4 frontier expansions (last is empty).
        result = reach(concurrent_net(1))
        assert result.iterations == 2

    def test_monolithic_agrees_with_partitioned(self):
        net = conflict_pairs_net(3)
        assert (
            reach(net, partitioned=False).num_states
            == reach(net, partitioned=True).num_states
        )

    def test_no_force_order_agrees(self):
        net = nsdp(2)
        assert (
            reach(net, use_force_order=False).num_states
            == reach(net).num_states
        )

    def test_peak_positive(self):
        assert reach(choice_net()).peak_nodes > 0


class TestDeadlock:
    def test_deadlock_found(self):
        result = reach(nsdp(2))
        marking = result.deadlock_marking()
        assert marking is not None
        net = nsdp(2)
        assert net.is_deadlocked(marking)

    def test_live_net_none(self):
        assert reach(rw(2)).deadlock_marking() is None


class TestAnalyze:
    def test_verdict_and_extras(self):
        result = analyze(nsdp(2))
        assert result.deadlock
        assert result.analyzer == "symbolic"
        assert result.extras["peak_bdd_nodes"] > 0
        assert result.extras["iterations"] > 0
        assert result.witness is not None
        assert result.witness.trace == ()  # no trace from forward reach

    def test_live_verdict(self):
        result = analyze(rw(2))
        assert not result.deadlock
        assert result.witness is None

    def test_time_limit(self):
        with pytest.raises(TimeLimitReached):
            reach(nsdp(6), max_seconds=0.0)
