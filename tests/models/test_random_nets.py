"""Tests for the random-net generators used by the property suites."""

import random

import pytest

from repro.models import random_net, random_state_machine_product
from repro.net import check_safe


class TestRandomNet:
    def test_deterministic_for_seed(self):
        a = random_net(random.Random(5))
        b = random_net(random.Random(5))
        assert a == b

    def test_respects_sizes(self):
        net = random_net(random.Random(1), num_places=9, num_transitions=7)
        assert net.num_places == 9
        assert net.num_transitions == 7

    def test_every_transition_has_inputs(self):
        net = random_net(random.Random(2), num_transitions=10, num_places=8)
        for t in range(net.num_transitions):
            assert net.pre_places[t]


class TestStateMachineProduct:
    def test_safe_by_construction(self):
        for seed in range(25):
            net = random_state_machine_product(random.Random(seed))
            assert check_safe(net, max_states=20000)

    def test_deterministic_for_seed(self):
        a = random_state_machine_product(random.Random(9))
        b = random_state_machine_product(random.Random(9))
        assert a == b

    def test_component_tokens_conserved(self):
        from repro.analysis import explore

        net = random_state_machine_product(
            random.Random(3), num_components=3, states_per_component=3
        )
        graph = explore(net, max_states=20000)
        for marking in graph.states():
            names = net.marking_names(marking)
            for c in range(3):
                local = sum(1 for n in names if n.startswith(f"c{c}_s"))
                assert local == 1, "each component holds exactly one token"

    def test_sometimes_deadlocks(self):
        # The generator must produce both verdicts to be a useful test bed.
        from repro.analysis import has_deadlock

        verdicts = {
            has_deadlock(random_state_machine_product(random.Random(seed)))
            for seed in range(30)
        }
        assert verdicts == {True, False}

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            random_state_machine_product(
                random.Random(0), states_per_component=1
            )
