"""Tests for the producer/consumer extra model."""

import pytest

from repro.analysis import explore, has_deadlock
from repro.models import bounded_buffer
from repro.net import check_safe


class TestStructure:
    def test_sizes(self):
        net = bounded_buffer(2, 2, 3)
        # 2*capacity buffer places + 2 per producer + 2 per consumer
        assert net.num_places == 6 + 4 + 4

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            bounded_buffer(0, 1, 1)
        with pytest.raises(ValueError):
            bounded_buffer(1, 1, 0)

    def test_safe(self):
        assert check_safe(bounded_buffer())


class TestBehaviour:
    @pytest.mark.parametrize(
        "producers,consumers,capacity",
        [(1, 1, 1), (2, 1, 2), (1, 2, 2), (2, 2, 2)],
    )
    def test_deadlock_free(self, producers, consumers, capacity):
        assert not has_deadlock(bounded_buffer(producers, consumers, capacity))

    def test_item_flows_through(self):
        net = bounded_buffer(1, 1, 1)
        m = net.initial_marking
        m = net.fire_by_name("produce0", m)
        m = net.fire_by_name("deposit0_cell0", m)
        assert "full0" in net.marking_names(m)
        m = net.fire_by_name("fetch0_cell0", m)
        m = net.fire_by_name("process0", m)
        assert m == net.initial_marking

    def test_buffer_capacity_respected(self):
        net = bounded_buffer(2, 1, 1)
        graph = explore(net)
        for marking in graph.states():
            names = net.marking_names(marking)
            fulls = sum(1 for n in names if n.startswith("full"))
            assert fulls <= 1
