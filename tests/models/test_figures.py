"""Tests for the figure nets' structure and published state counts."""

import pytest

from repro.analysis import explore
from repro.models import (
    choice_net,
    concurrent_net,
    conflict_pairs_net,
    figure3_net,
    figure5_net,
    figure7_net,
)
from repro.net import maximal_conflict_sets


class TestConcurrentNet:
    def test_structure(self):
        net = concurrent_net(4)
        assert net.num_places == 8
        assert net.num_transitions == 4
        assert len(net.initial_marking) == 4

    def test_full_graph_is_lattice(self):
        assert explore(concurrent_net(3)).num_states == 8

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            concurrent_net(0)


class TestConflictPairsNet:
    def test_structure(self):
        net = conflict_pairs_net(3)
        assert net.num_transitions == 6
        components = maximal_conflict_sets(net)
        assert len(components) == 3
        assert all(len(c) == 2 for c in components)

    def test_every_branch_reaches_deadlock(self):
        graph = explore(conflict_pairs_net(2))
        assert len(graph.deadlocks) == 4  # all A/B combinations

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            conflict_pairs_net(0)


class TestWalkthroughNets:
    def test_figure3_deadlocks(self):
        # Classical analysis: {p4} (B path) and the post-C marking are dead.
        net = figure3_net()
        graph = explore(net)
        assert net.marking_from_names(["p4"]) in graph.deadlocks

    def test_figure5_conflict_on_p1(self):
        net = figure5_net()
        a = net.transition_id("A")
        b = net.transition_id("B")
        shared = net.pre_places[a] & net.pre_places[b]
        assert shared == frozenset({net.place_id("p1")})

    def test_figure7_two_sequential_pairs(self):
        net = figure7_net()
        components = maximal_conflict_sets(net)
        assert len(components) == 2
        # C and D share the output place p5 but never both fire (they
        # conflict on p3), so the net stays safe.
        from repro.net import check_safe

        assert check_safe(net)

    def test_choice_net_minimal(self):
        net = choice_net()
        assert net.num_transitions == 2
        assert explore(net).num_states == 3
