"""Tests for the ASAT benchmark family."""

import pytest

from repro.analysis import explore, has_deadlock
from repro.models import asat
from repro.net import check_safe, diagnose
from repro.analysis.properties import mutual_exclusion_holds


class TestStructure:
    def test_power_of_two_required(self):
        for bad in (0, 1, 3, 6):
            with pytest.raises(ValueError):
                asat(bad)

    def test_tree_shape(self):
        net = asat(4)
        # 3 cells for 4 users: cells c0_0, c0_1, c1_0
        assert "free_c0_0" in net.places
        assert "free_c1_0" in net.places
        assert "free_c2_0" not in net.places

    def test_clean_structure(self):
        assert diagnose(asat(2)).clean

    def test_safe(self):
        assert check_safe(asat(4))


class TestBehaviour:
    @pytest.mark.parametrize("n", [2, 4])
    def test_deadlock_free(self, n):
        assert not has_deadlock(asat(n))

    def test_mutual_exclusion(self):
        # The arbiter's whole point: at most one user in its 'use' place.
        net = asat(4)
        report = mutual_exclusion_holds(net, [f"use{i}" for i in range(4)])
        assert report

    def test_every_user_can_acquire(self):
        from repro.analysis import is_quasi_live

        assert is_quasi_live(asat(2))

    def test_state_explosion_shape(self):
        # Roughly two orders of magnitude per doubling (paper: 88 -> 7822).
        small = explore(asat(2)).num_states
        large = explore(asat(4)).num_states
        assert small == 36
        assert large == 768
        assert large / small > 10
