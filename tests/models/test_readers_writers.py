"""Tests for the RW benchmark family."""

import pytest

from repro.analysis import explore, has_deadlock
from repro.analysis.properties import mutual_exclusion_holds
from repro.models import rw
from repro.net import check_safe, StructuralInfo
from repro.stubborn import explore_reduced


class TestStructure:
    def test_sizes(self):
        net = rw(3)
        assert net.num_places == 1 + 3 * 3  # controller + free/reading/writing
        assert net.num_transitions == 4 * 3

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            rw(1)

    def test_safe(self):
        assert check_safe(rw(3))

    def test_single_conflict_component_among_starts(self):
        # Every start transition conflicts (transitively) with every other.
        net = rw(4)
        info = StructuralInfo(net)
        starts = {
            net.transition_id(f"start{kind}{i}")
            for kind in ("read", "write")
            for i in range(4)
        }
        components = {info.mcs_of[t] for t in starts}
        assert len(components) == 1


class TestBehaviour:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_deadlock_free(self, n):
        assert not has_deadlock(rw(n))

    def test_writer_exclusive(self):
        net = rw(3)
        report = mutual_exclusion_holds(
            net, [f"writing{i}" for i in range(3)]
        )
        assert report

    def test_writer_excludes_readers(self):
        net = rw(3)

        def ok(names):
            writing = any(n.startswith("writing") for n in names)
            reading = any(n.startswith("reading") for n in names)
            return not (writing and reading)

        from repro.analysis import check_invariant

        assert check_invariant(net, ok, description="w/r exclusion")

    def test_concurrent_readers_allowed(self):
        net = rw(3)
        m = net.initial_marking
        m = net.fire_by_name("startread0", m)
        m = net.fire_by_name("startread1", m)
        assert "reading0" in net.marking_names(m)
        assert "reading1" in net.marking_names(m)

    def test_state_count_formula(self):
        # any subset of readers + n exclusive-writer states
        for n in (2, 3, 4, 6):
            assert explore(rw(n)).num_states == 2**n + n

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_po_reduction_degenerates(self, n):
        # The paper's §4 observation, exactly: reduced == full.
        net = rw(n)
        assert explore_reduced(net).num_states == explore(net).num_states
