"""Tests for the NSDP benchmark family."""

import pytest

from repro.analysis import explore, find_deadlock
from repro.models import nsdp
from repro.net import check_safe


class TestStructure:
    def test_sizes(self):
        net = nsdp(3)
        # 3 forks + 6 local places per philosopher
        assert net.num_places == 3 + 6 * 3
        assert net.num_transitions == 8 * 3

    def test_left_first_variant(self):
        net = nsdp(3, order="left-first")
        assert net.num_transitions == 3 * 3

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            nsdp(1)
        with pytest.raises(ValueError):
            nsdp(3, order="sideways")

    @pytest.mark.parametrize("order", ["either", "left-first"])
    def test_safe(self, order):
        assert check_safe(nsdp(3, order=order))


class TestBehaviour:
    @pytest.mark.parametrize("order", ["either", "left-first"])
    def test_deadlocks(self, order):
        # The circular wait: everybody holds one fork.
        witness = find_deadlock(nsdp(3, order=order))
        assert witness is not None

    def test_deadlock_is_circular_wait(self):
        net = nsdp(3, order="left-first")
        graph = explore(net)
        assert len(graph.deadlocks) == 1
        (dead,) = graph.deadlocks
        names = net.marking_names(dead)
        assert names == frozenset({"wait0", "wait1", "wait2"})

    def test_full_state_counts_match_published_shape(self):
        # Ours: 17, 78, 341 — the paper's 18/322 shape (growth ≈ φ³ ≈ 4.24
        # per philosopher).
        counts = [explore(nsdp(n)).num_states for n in (2, 3, 4)]
        assert counts == [17, 78, 341]
        growth = counts[2] / counts[1]
        assert 4.0 < growth < 4.6

    def test_all_philosophers_symmetric(self):
        net = nsdp(4)
        graph = explore(net, max_states=1000)
        # the initial state enables exactly 2 first-grabs per philosopher
        enabled = net.enabled_transitions(net.initial_marking)
        assert len(enabled) == 8
