"""Tests for the OVER benchmark family."""

import pytest

from repro.analysis import explore, find_deadlock
from repro.models import over
from repro.net import check_safe


class TestStructure:
    def test_sizes(self):
        net = over(3)
        assert net.num_places == 10 * 3
        assert net.num_transitions == 7 * 3

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            over(1)

    @pytest.mark.parametrize("n", [2, 3])
    def test_safe(self, n):
        assert check_safe(over(n))


class TestBehaviour:
    def test_deadlock_when_all_ask(self):
        # Everyone signalling intent simultaneously is the circular wait.
        net = over(3)
        marking = net.initial_marking
        for i in range(3):
            marking = net.fire_by_name(f"ask{i}", marking)
        assert net.is_deadlocked(marking)

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_deadlock_reachable(self, n):
        assert find_deadlock(over(n)) is not None

    def test_successful_overtake_cycle(self):
        # One car overtakes; everything returns to the initial state.
        net = over(2)
        m = net.initial_marking
        for label in (
            "ask0",
            "grant1",
            "pullout0",
            "pass0",
            "done0",
            "resume1",
            "settle0",
        ):
            m = net.fire_by_name(label, m)
        assert m == net.initial_marking

    def test_state_counts(self):
        counts = [explore(over(n)).num_states for n in (2, 3, 4)]
        assert counts == [16, 62, 256]
        # exponential growth per car
        assert counts[2] / counts[1] > 3.5
