"""Tests for the QAM-modem embedded-system model."""

import pytest

from repro.analysis import analyze as full_analyze, explore
from repro.gpo import analyze as gpo_analyze
from repro.models import modem
from repro.net import check_safe, diagnose
from repro.stubborn import analyze as stubborn_analyze


class TestStructure:
    def test_lane_count_scales(self):
        one = modem(1)
        two = modem(2)
        assert two.num_places > one.num_places
        assert "eq_idle_l1" in two.places
        assert "eq_idle_l1" not in one.places

    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            modem(0)

    @pytest.mark.parametrize("bug", [True, False])
    def test_safe(self, bug):
        assert check_safe(modem(2, bug=bug))

    def test_clean_structure(self):
        assert diagnose(modem(2)).clean

    def test_bug_variant_distinct_name(self):
        assert modem(2, bug=True).name != modem(2).name


class TestBehaviour:
    @pytest.mark.parametrize("lanes", [1, 2])
    def test_bug_deadlocks(self, lanes):
        assert full_analyze(modem(lanes, bug=True)).deadlock

    @pytest.mark.parametrize("lanes", [1, 2])
    def test_fixed_is_live(self, lanes):
        assert not full_analyze(modem(lanes, bug=False)).deadlock

    def test_deadlock_is_the_retrain_wedge(self):
        net = modem(1, bug=True)
        graph = explore(net)
        assert graph.deadlocks
        for marking in graph.deadlocks:
            names = net.marking_names(marking)
            assert "eq_training" in names
            assert "ctl_wait" in names
            assert "ch2_l0_full" in names  # the channel that never drains

    def test_gpo_constant_states_across_lanes(self):
        counts = {
            gpo_analyze(modem(lanes, bug=True)).states
            for lanes in (1, 2, 3)
        }
        assert counts == {11}

    @pytest.mark.parametrize("bug,expected", [(True, True), (False, False)])
    def test_all_analyzers_agree(self, bug, expected):
        net = modem(2, bug=bug)
        assert gpo_analyze(net).deadlock == expected
        assert stubborn_analyze(net, max_states=200_000).deadlock == expected

    def test_retrain_completes_in_fixed_variant(self):
        net = modem(1, bug=False)
        m = net.initial_marking
        m = net.fire_by_name("start_retrain", m)
        m = net.fire_by_name("eq_accept_retrain", m)
        m = net.fire_by_name("eq_finish_retrain", m)
        m = net.fire_by_name("ack_retrain", m)
        assert "ctl_idle" in net.marking_names(m)

    def test_pipeline_moves_data(self):
        net = modem(1)
        m = net.initial_marking
        for label in (
            "sample_l0",
            "emit_l0",
            "fir_take_l0",
            "fir_put_l0",
            "eq_take_l0",
            "eq_put_l0",
            "dec_take_l0",
            "dec_done_l0",
        ):
            m = net.fire_by_name(label, m)
        assert m == net.initial_marking
