"""Tests for the state-class graph and timed analysis."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import ExplorationLimitReached, reachable_markings
from repro.models import nsdp, over
from repro.timed import (
    TimedNetBuilder,
    TimedPetriNet,
    analyze,
    explore_classes,
    timed_reachable_markings,
)
from tests.conftest import state_machine_nets


class TestUntimedEquivalence:
    @pytest.mark.parametrize(
        "make", [lambda: nsdp(2), lambda: over(2)]
    )
    def test_zero_infinity_intervals_match_untimed(self, make):
        net = make()
        timed = timed_reachable_markings(TimedPetriNet.untimed(net))
        assert timed == reachable_markings(net)

    def test_deadlock_verdict_matches_untimed(self):
        tpn = TimedPetriNet.untimed(nsdp(2))
        result = analyze(tpn)
        assert result.deadlock
        assert result.analyzer == "timed"


class TestTimingPrunes:
    def test_slow_branch_unreachable(self):
        builder = TimedNetBuilder("race")
        builder.place("p", marked=True)
        builder.place("qa")
        builder.place("qb")
        builder.transition("fast", interval=(0, 1), inputs=["p"], outputs=["qa"])
        builder.transition("slow", interval=(2, 3), inputs=["p"], outputs=["qb"])
        tpn = builder.build()
        marks = timed_reachable_markings(tpn)
        names = {frozenset(tpn.net.marking_names(m)) for m in marks}
        assert frozenset({"qa"}) in names
        assert frozenset({"qb"}) not in names

    def test_timing_can_remove_a_deadlock(self):
        # Untimed: firing 'bad' leads to a dead place.  Timed: 'good'
        # always preempts it.
        builder = TimedNetBuilder("guarded")
        builder.place("p", marked=True)
        builder.place("ok")
        builder.place("stuck")
        builder.transition("good", interval=(0, 1), inputs=["p"], outputs=["ok"])
        builder.transition("bad", interval=(5, 6), inputs=["p"], outputs=["stuck"])
        builder.transition("loop", interval=(0, None), inputs=["ok"], outputs=["p"])
        tpn = builder.build()
        untimed_deadlock = analyze(TimedPetriNet.untimed(tpn.net)).deadlock
        timed_deadlock = analyze(tpn).deadlock
        assert untimed_deadlock
        assert not timed_deadlock

    def test_deadlocked_class_has_no_enabled(self):
        builder = TimedNetBuilder("dead")
        builder.place("p", marked=True)
        builder.place("q")
        builder.transition("t", interval=(1, 1), inputs=["p"], outputs=["q"])
        graph = explore_classes(builder.build())
        assert len(graph.deadlocks) == 1
        (dead,) = graph.deadlocks
        assert dead.enabled() == ()


class TestAnalysis:
    def test_witness_trace_replays_untimed(self):
        tpn = TimedPetriNet.untimed(nsdp(2))
        result = analyze(tpn)
        assert result.witness is not None
        marking = tpn.net.initial_marking
        for label in result.witness.trace:
            marking = tpn.net.fire_by_name(label, marking)
        assert tpn.net.is_deadlocked(marking)

    def test_class_limit(self):
        with pytest.raises(ExplorationLimitReached):
            explore_classes(TimedPetriNet.untimed(nsdp(3)), max_classes=5)

    def test_extras_report_markings(self):
        result = analyze(TimedPetriNet.untimed(nsdp(2)))
        assert result.extras["markings"] == 17
        # state classes can refine markings but never exceed them by
        # orders of magnitude on an untimed wrapper (same domain always)
        assert result.states == 17

    def test_state_classes_refine_markings(self):
        # With real intervals, several classes may share one marking.
        builder = TimedNetBuilder("refine")
        builder.place("a", marked=True)
        builder.place("b", marked=True)
        builder.place("a2")
        builder.place("b2")
        builder.transition("ta", interval=(0, 4), inputs=["a"], outputs=["a2"])
        builder.transition("tb", interval=(1, 5), inputs=["b"], outputs=["b2"])
        builder.transition("ra", interval=(2, 2), inputs=["a2"], outputs=["a"])
        builder.transition("rb", interval=(3, 3), inputs=["b2"], outputs=["b"])
        tpn = builder.build()
        result = analyze(tpn, max_classes=5000)
        assert result.states >= result.extras["markings"]


@given(net=state_machine_nets())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_untimed_wrapper_equivalence_property(net):
    """[0, ∞) intervals: state-class reachability == classical."""
    timed = timed_reachable_markings(
        TimedPetriNet.untimed(net), max_classes=5000
    )
    assert timed == reachable_markings(net, max_states=5000)


@given(
    net=state_machine_nets(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_timed_reachability_subset_property(net, seed):
    """Any interval assignment only removes behaviour, never adds it."""
    rng = random.Random(seed)
    intervals = []
    for _ in range(net.num_transitions):
        eft = rng.randint(0, 3)
        lft = None if rng.random() < 0.3 else eft + rng.randint(0, 3)
        intervals.append((eft, lft))
    tpn = TimedPetriNet(net, intervals)
    try:
        timed = timed_reachable_markings(tpn, max_classes=4000)
    except ExplorationLimitReached:
        return
    untimed = reachable_markings(net, max_states=8000)
    assert timed <= untimed
