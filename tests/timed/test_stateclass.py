"""Tests for Berthomieu-Diaz state classes: firability, firing, domains."""

import pytest

from repro.timed import (
    TimedNetBuilder,
    firable,
    fire_class,
    initial_class,
)
from repro.timed.stateclass import successors


def race(fast=(0, 1), slow=(2, 3)):
    """One marked place feeding two transitions with given intervals."""
    builder = TimedNetBuilder("race")
    builder.place("p", marked=True)
    builder.place("qa")
    builder.place("qb")
    builder.transition("fast", interval=fast, inputs=["p"], outputs=["qa"])
    builder.transition("slow", interval=slow, inputs=["p"], outputs=["qb"])
    return builder.build()


class TestInitialClass:
    def test_variables_are_enabled_set(self):
        tpn = race()
        cls = initial_class(tpn)
        assert cls.enabled() == (0, 1)
        assert cls.marking == tpn.net.initial_marking

    def test_delay_bounds_match_static_intervals(self):
        tpn = race(fast=(1, 4), slow=(2, None))
        cls = initial_class(tpn)
        assert cls.delay_bounds(0) == (1, 4)
        assert cls.delay_bounds(1) == (2, None)


class TestFirability:
    def test_urgent_beats_late(self):
        # fast must fire by 1, slow cannot fire before 2.
        tpn = race(fast=(0, 1), slow=(2, 3))
        cls = initial_class(tpn)
        assert firable(tpn, cls, 0)
        assert not firable(tpn, cls, 1)

    def test_overlapping_intervals_race(self):
        tpn = race(fast=(0, 2), slow=(1, 3))
        cls = initial_class(tpn)
        assert firable(tpn, cls, 0)
        assert firable(tpn, cls, 1)

    def test_equal_boundary_still_firable(self):
        # slow's eft equals fast's lft: firing exactly at that instant.
        tpn = race(fast=(0, 2), slow=(2, 5))
        cls = initial_class(tpn)
        assert firable(tpn, cls, 1)

    def test_disabled_transition_not_firable(self):
        tpn = race()
        cls = initial_class(tpn)
        after = fire_class(tpn, cls, 0)
        assert after is not None
        assert not firable(tpn, after, 1)  # p consumed
        assert fire_class(tpn, after, 1) is None


class TestFiringRule:
    def test_persisting_clock_advances(self):
        # Two independent transitions; firing 'a' (by time 2) leaves 'b'
        # with residual delay [max(0, 3-2), 5] = [1, 5].
        builder = TimedNetBuilder("pair")
        builder.place("pa", marked=True)
        builder.place("pb", marked=True)
        builder.place("qa")
        builder.place("qb")
        builder.transition("a", interval=(1, 2), inputs=["pa"], outputs=["qa"])
        builder.transition("b", interval=(3, 5), inputs=["pb"], outputs=["qb"])
        tpn = builder.build()
        cls = initial_class(tpn)
        after = fire_class(tpn, cls, 0)
        assert after is not None
        low, high = after.delay_bounds(1)
        assert low == 1  # 3 - lft(a)
        assert high == 4  # 5 - eft(a)

    def test_newly_enabled_resets_clock(self):
        builder = TimedNetBuilder("chain")
        builder.place("p", marked=True)
        builder.place("q")
        builder.place("r")
        builder.transition("first", interval=(5, 10), inputs=["p"], outputs=["q"])
        builder.transition("second", interval=(7, 9), inputs=["q"], outputs=["r"])
        tpn = builder.build()
        after = fire_class(tpn, initial_class(tpn), 0)
        assert after is not None
        assert after.delay_bounds(1) == (7, 9)  # static interval, fresh

    def test_conflict_disables_loser(self):
        tpn = race(fast=(0, 5), slow=(0, 5))
        after = fire_class(tpn, initial_class(tpn), 0)
        assert after is not None
        assert after.enabled() == ()

    def test_successors_iteration(self):
        tpn = race(fast=(0, 2), slow=(1, 3))
        pairs = list(successors(tpn, initial_class(tpn)))
        assert [t for t, _ in pairs] == [0, 1]

    def test_unfirable_successor_none(self):
        tpn = race(fast=(0, 1), slow=(2, 3))
        assert fire_class(tpn, initial_class(tpn), 1) is None


class TestClassIdentity:
    def test_canonical_equality(self):
        tpn = race()
        assert initial_class(tpn) == initial_class(tpn)
        assert hash(initial_class(tpn)) == hash(initial_class(tpn))

    def test_cycle_returns_to_same_class(self):
        builder = TimedNetBuilder("loop")
        builder.place("p", marked=True)
        builder.place("q")
        builder.transition("go", interval=(1, 2), inputs=["p"], outputs=["q"])
        builder.transition("back", interval=(0, 3), inputs=["q"], outputs=["p"])
        tpn = builder.build()
        cls = initial_class(tpn)
        there = fire_class(tpn, cls, 0)
        back = fire_class(tpn, there, 1)
        assert back == cls

    def test_repr(self):
        assert "enabled=[0, 1]" in repr(initial_class(race()))
