"""Tests for the time-Petri-net structure and builder."""

import pytest

from repro.models import choice_net
from repro.net import NetStructureError, UnknownNodeError
from repro.timed import TimedNetBuilder, TimedPetriNet


class TestTimedPetriNet:
    def test_from_mapping(self):
        tpn = TimedPetriNet(choice_net(), {"a": (1, 2), "b": (0, None)})
        assert tpn.interval_of("a") == (1, 2)
        assert tpn.interval_of("b") == (0, None)

    def test_from_sequence(self):
        tpn = TimedPetriNet(choice_net(), [(0, 5), (3, 3)])
        assert tpn.eft(1) == 3
        assert tpn.lft(1) == 3

    def test_missing_interval_rejected(self):
        with pytest.raises(UnknownNodeError):
            TimedPetriNet(choice_net(), {"a": (0, 1)})

    def test_unknown_transition_rejected(self):
        with pytest.raises(UnknownNodeError):
            TimedPetriNet(
                choice_net(), {"a": (0, 1), "b": (0, 1), "ghost": (0, 1)}
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(NetStructureError):
            TimedPetriNet(choice_net(), [(0, 1)])

    def test_negative_eft_rejected(self):
        with pytest.raises(NetStructureError):
            TimedPetriNet(choice_net(), [(-1, 2), (0, None)])

    def test_empty_interval_rejected(self):
        with pytest.raises(NetStructureError):
            TimedPetriNet(choice_net(), [(3, 2), (0, None)])

    def test_untimed_wrapper(self):
        tpn = TimedPetriNet.untimed(choice_net())
        assert all(interval == (0, None) for interval in tpn.intervals)

    def test_repr(self):
        assert "|T|=2" in repr(TimedPetriNet.untimed(choice_net()))


class TestBuilder:
    def test_build(self):
        builder = TimedNetBuilder("demo")
        builder.place("p", marked=True)
        builder.place("q")
        builder.transition("t", interval=(1, 4), inputs=["p"], outputs=["q"])
        tpn = builder.build()
        assert tpn.net.name == "demo"
        assert tpn.interval_of("t") == (1, 4)

    def test_default_interval(self):
        builder = TimedNetBuilder()
        builder.place("p", marked=True)
        builder.transition("t", inputs=["p"])
        assert builder.build().interval_of("t") == (0, None)

    def test_arc(self):
        builder = TimedNetBuilder()
        builder.place("p", marked=True)
        builder.transition("t")
        builder.arc("p", "t")
        assert builder.build().net.num_arcs == 1
