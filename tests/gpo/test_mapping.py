"""Tests for the Def. 3.4 mapping between GPN states and classical markings."""

from repro.gpo import Gpn, mapping, mapping_named, multiple_fire, scenario_marking
from repro.models import choice_net, conflict_pairs_net, figure7_net


class TestInitialState:
    def test_initial_maps_to_m0(self):
        net = conflict_pairs_net(3)
        gpn = Gpn(net, backend="explicit")
        assert mapping(gpn, gpn.initial_state()) == {net.initial_marking}

    def test_scenario_marking_matches_membership(self):
        net = choice_net()
        gpn = Gpn(net, backend="explicit")
        state = gpn.initial_state()
        for scenario in state.valid.iter_sets():
            marking = scenario_marking(gpn, state, scenario)
            assert marking == net.initial_marking


class TestAfterFiring:
    def test_choice_covers_both_branches(self):
        net = choice_net()
        gpn = Gpn(net, backend="explicit")
        after = multiple_fire(gpn, gpn.initial_state(), frozenset([0, 1]))
        assert mapping_named(gpn, after) == {
            frozenset({"p1"}),
            frozenset({"p2"}),
        }

    def test_exponential_coverage(self):
        # One multiple firing of n conflict pairs covers 2^n markings.
        n = 6
        net = conflict_pairs_net(n)
        gpn = Gpn(net, backend="bdd")
        fired = frozenset(range(net.num_transitions))
        after = multiple_fire(gpn, gpn.initial_state(), fired)
        assert len(mapping(gpn, after)) == 2**n

    def test_limit_parameter(self):
        net = conflict_pairs_net(5)
        gpn = Gpn(net, backend="bdd")
        fired = frozenset(range(net.num_transitions))
        after = multiple_fire(gpn, gpn.initial_state(), fired)
        assert len(mapping(gpn, after, limit=3)) <= 3


class TestConsistencyWithClassical:
    def test_mapped_markings_are_reachable(self):
        from repro.analysis import reachable_markings

        net = figure7_net()
        gpn = Gpn(net, backend="explicit")
        reachable = reachable_markings(net)
        state = gpn.initial_state()
        a, b = net.transition_id("A"), net.transition_id("B")
        state = multiple_fire(gpn, state, frozenset([a, b]))
        assert mapping(gpn, state) <= reachable
        c, d = net.transition_id("C"), net.transition_id("D")
        state = multiple_fire(gpn, state, frozenset([c, d]))
        assert mapping(gpn, state) <= reachable
