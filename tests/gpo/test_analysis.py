"""Tests for the §3.3 analysis procedure and its result packaging."""

import pytest

from repro.analysis import ExplorationLimitReached
from repro.gpo import GpoOptions, analyze, explore_gpo
from repro.models import (
    asat,
    choice_net,
    concurrent_net,
    conflict_pairs_net,
    figure3_net,
    nsdp,
    over,
    rw,
)


class TestHeadlineClaims:
    def test_figure2_two_states(self):
        # §3.1: "from 2^(N+1) - 1 to only 2 computed states!"
        for n in (1, 2, 4, 8, 12):
            result = explore_gpo(conflict_pairs_net(n))
            assert result.graph.num_states == 2

    def test_figure1_two_states(self):
        # n concurrent transitions fire simultaneously.
        for n in (1, 3, 6):
            result = explore_gpo(concurrent_net(n))
            assert result.graph.num_states == 2

    def test_nsdp_constant_states(self):
        counts = {explore_gpo(nsdp(n)).graph.num_states for n in (2, 3, 4, 5)}
        assert len(counts) == 1  # independent of n (paper: 3, ours: 2)

    def test_rw_constant_states(self):
        counts = {explore_gpo(rw(n)).graph.num_states for n in (2, 4, 6)}
        assert len(counts) == 1

    def test_asat_grows_slowly(self):
        a2 = explore_gpo(asat(2)).graph.num_states
        a4 = explore_gpo(asat(4)).graph.num_states
        assert a2 < a4 <= a2 + 6  # paper: 8 -> 14


class TestVerdicts:
    @pytest.mark.parametrize(
        "make, expected",
        [
            (lambda: nsdp(3), True),
            (lambda: over(3), True),
            (lambda: choice_net(), True),
            (lambda: rw(3), False),
            (lambda: asat(2), False),
        ],
    )
    def test_deadlock_verdicts(self, make, expected):
        for backend in ("explicit", "bdd"):
            result = analyze(make(), backend=backend)
            assert result.deadlock == expected, backend

    def test_live_cycle(self, loop_net):
        result = analyze(loop_net)
        assert not result.deadlock
        assert result.states == 2  # one multiple fire per direction... hmm

    def test_witness_marking_is_real_deadlock(self):
        net = nsdp(3)
        result = analyze(net)
        assert result.witness is not None
        marking = net.marking_from_names(result.witness.marking)
        assert net.is_deadlocked(marking)

    def test_extras(self):
        result = analyze(conflict_pairs_net(4), backend="bdd")
        assert result.extras["scenarios"] == 16
        assert result.extras["backend"] == "bdd"
        assert result.extras["deadlock_states"] >= 1


class TestOptions:
    def test_stop_all_stops_early(self):
        opts = GpoOptions(on_deadlock="stop-all")
        result = explore_gpo(figure3_net(), opts)
        assert len(result.deadlock_states) == 1

    def test_continue_explores_survivors(self):
        stop = explore_gpo(figure3_net())
        cont = explore_gpo(figure3_net(), GpoOptions(on_deadlock="continue"))
        assert cont.graph.num_states >= stop.graph.num_states
        assert cont.has_deadlock

    def test_max_states(self):
        with pytest.raises(ExplorationLimitReached):
            explore_gpo(
                asat(4),
                GpoOptions(max_states=2),
            )

    def test_validate_mode_passes_on_benchmarks(self):
        for make in (lambda: nsdp(3), lambda: rw(3), lambda: over(2)):
            result = explore_gpo(make(), GpoOptions(validate=True))
            assert result.graph.num_states >= 1

    def test_witnesses_limit(self):
        result = explore_gpo(
            conflict_pairs_net(3), GpoOptions(on_deadlock="continue")
        )
        assert len(result.witnesses(limit=None)) >= 1
        assert len(result.witnesses(limit=1)) == 1


class TestSoundnessRegressions:
    """Nets that falsified earlier, naive readings of the §3.3 procedure."""

    # Two state machines sharing two reusable resources.  The deadlock
    # path fires BOTH members of a conflict pair sequentially (c0_t0 takes
    # res1, c0_t1 returns it, c1_t0 takes it again): a single maximal
    # independent set cannot represent that execution, so a candidate
    # firing that disables the postponed c0_t0 silently loses it.  The
    # paper's candidate side-condition — implemented as a semantic veto
    # with fallback to single-firing branching — must catch this.
    REENTRANT_CONFLICT = """
    net sm
    place res0 marked
    place res1 marked
    place c0_s0 marked
    place c0_s1
    place c0_s2
    place c0_s3
    place c1_s0 marked
    place c1_s1
    place c1_s2
    place c1_s3
    trans c0_t0 : res1 c0_s0 -> c0_s1
    trans c0_t1 : res0 c0_s1 -> res1 c0_s2
    trans c0_t2 : res0 c0_s2 -> res0 c0_s3
    trans c0_t3 : c0_s3 -> res0 c0_s0
    trans c1_t0 : res1 c1_s0 -> c1_s1
    trans c1_t1 : res0 c1_s1 -> res1 c1_s2
    trans c1_t2 : c1_s2 -> c1_s3
    trans c1_t3 : c1_s3 -> res0 c1_s0
    """

    @pytest.mark.parametrize("backend", ["explicit", "bdd"])
    def test_reentrant_conflict_deadlock_found(self, backend):
        from repro.analysis import explore
        from repro.net import parse_net

        net = parse_net(self.REENTRANT_CONFLICT)
        full = explore(net)
        assert full.deadlocks, "the regression net must deadlock classically"
        result = explore_gpo(
            net, GpoOptions(backend=backend, validate=True)
        )
        assert result.has_deadlock

    @pytest.mark.parametrize("backend", ["explicit", "bdd"])
    def test_reentrant_conflict_witness_is_real(self, backend):
        from repro.net import parse_net

        net = parse_net(self.REENTRANT_CONFLICT)
        result = explore_gpo(net, GpoOptions(backend=backend))
        witness = result.witnesses(limit=1)[0]
        marking = net.marking_from_names(witness.marking)
        assert net.is_deadlocked(marking)


class TestTraceLabels:
    def test_multiple_firing_label(self):
        result = explore_gpo(choice_net())
        labels = [label for _, label, _ in result.graph.edges()]
        assert labels == ["{a,b}"]

    def test_witness_trace_uses_labels(self):
        result = explore_gpo(nsdp(2))
        witness = result.witnesses(limit=1)[0]
        assert all(step.startswith("{") or step for step in witness.trace)
