"""GPN firing semantics against the paper's worked examples.

Every figure of Section 3 is encoded and its statements asserted
*literally*: the enabling families, the firing effects, the ``r`` updates
(including Fig. 7's extended conflict ``r2 = {{A,C},{B,D}}``), and the
classical-marking mappings.  Each test runs on both family backends.
"""

import pytest

from repro.gpo import (
    Gpn,
    GpnState,
    dead_scenarios,
    enabled_families,
    m_enabled,
    mapping_named,
    multiple_fire,
    s_enabled,
    single_fire,
)
from repro.models import figure3_net, figure5_net, figure7_net

BACKENDS = ["explicit", "bdd"]


def sets_named(gpn, family):
    """Render a family as frozensets of transition names."""
    return {
        frozenset(gpn.net.transitions[t] for t in v)
        for v in family.iter_sets()
    }


def family_from_names(gpn, *name_sets):
    ids = [
        frozenset(gpn.net.transition_id(name) for name in names)
        for names in name_sets
    ]
    return gpn.ctx.from_sets(ids)


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


class TestFigure5:
    """Single firing semantics (Defs. 3.2 and 3.3)."""

    def make_state(self, gpn):
        # The depicted state: m(p0)={{A},{B}}, m(p1)={{A}}, m(p2)={{B}}.
        net = gpn.net
        empty = gpn.ctx.empty()
        marking = [empty] * net.num_places
        marking[net.place_id("p0")] = family_from_names(gpn, {"A"}, {"B"})
        marking[net.place_id("p1")] = family_from_names(gpn, {"A"})
        marking[net.place_id("p2")] = family_from_names(gpn, {"B"})
        return GpnState(tuple(marking), gpn.r0)

    def test_r0_is_the_papers_r(self, backend):
        gpn = Gpn(figure5_net(), backend=backend)
        assert sets_named(gpn, gpn.r0) == {
            frozenset({"A"}),
            frozenset({"B"}),
        }

    def test_single_enabling(self, backend):
        gpn = Gpn(figure5_net(), backend=backend)
        state = self.make_state(gpn)
        a = gpn.net.transition_id("A")
        b = gpn.net.transition_id("B")
        assert sets_named(gpn, s_enabled(gpn, state, a)) == {frozenset({"A"})}
        assert s_enabled(gpn, state, b).is_empty()

    def test_mapping_before_firing(self, backend):
        gpn = Gpn(figure5_net(), backend=backend)
        state = self.make_state(gpn)
        assert mapping_named(gpn, state) == {
            frozenset({"p0", "p1"}),
            frozenset({"p0", "p2"}),
        }

    def test_single_fire_moves_common_history(self, backend):
        gpn = Gpn(figure5_net(), backend=backend)
        state = self.make_state(gpn)
        a = gpn.net.transition_id("A")
        after = single_fire(gpn, state, a)
        net = gpn.net
        assert sets_named(
            gpn, after.marking[net.place_id("p0")]
        ) == {frozenset({"B"})}
        assert after.marking[net.place_id("p1")].is_empty()
        assert sets_named(
            gpn, after.marking[net.place_id("p3")]
        ) == {frozenset({"A"})}
        # r unchanged by single firing (Def. 3.3)
        assert after.valid == state.valid

    def test_mapping_after_firing(self, backend):
        # The paper: mapping(m', r) = {{p3}, {p0, p2}}.
        gpn = Gpn(figure5_net(), backend=backend)
        state = self.make_state(gpn)
        after = single_fire(gpn, state, gpn.net.transition_id("A"))
        assert mapping_named(gpn, after) == {
            frozenset({"p3"}),
            frozenset({"p0", "p2"}),
        }

    def test_firing_disabled_raises(self, backend):
        gpn = Gpn(figure5_net(), backend=backend)
        state = self.make_state(gpn)
        with pytest.raises(ValueError):
            single_fire(gpn, state, gpn.net.transition_id("B"))


class TestFigure7:
    """Multiple firing semantics (Defs. 3.5 and 3.6)."""

    def test_r0(self, backend):
        gpn = Gpn(figure7_net(), backend=backend)
        assert sets_named(gpn, gpn.r0) == {
            frozenset({"A", "C"}),
            frozenset({"A", "D"}),
            frozenset({"B", "C"}),
            frozenset({"B", "D"}),
        }

    def test_multiple_enabling_in_initial_state(self, backend):
        # m_enabled(A) = {{A,C},{A,D}}, m_enabled(B) = {{B,C},{B,D}}.
        gpn = Gpn(figure7_net(), backend=backend)
        state = gpn.initial_state()
        a = gpn.net.transition_id("A")
        b = gpn.net.transition_id("B")
        assert sets_named(gpn, m_enabled(gpn, state, a)) == {
            frozenset({"A", "C"}),
            frozenset({"A", "D"}),
        }
        assert sets_named(gpn, m_enabled(gpn, state, b)) == {
            frozenset({"B", "C"}),
            frozenset({"B", "D"}),
        }

    def test_initial_mapping_is_m0(self, backend):
        gpn = Gpn(figure7_net(), backend=backend)
        assert mapping_named(gpn, gpn.initial_state()) == {
            frozenset({"p0", "p3"})
        }

    def fire_ab(self, gpn):
        state = gpn.initial_state()
        a = gpn.net.transition_id("A")
        b = gpn.net.transition_id("B")
        return multiple_fire(gpn, state, frozenset([a, b]))

    def test_fire_ab(self, backend):
        # r1 = r0; mapping(m1) = {{p1,p3},{p2,p3}}.
        gpn = Gpn(figure7_net(), backend=backend)
        state1 = self.fire_ab(gpn)
        assert state1.valid == gpn.r0
        assert mapping_named(gpn, state1) == {
            frozenset({"p1", "p3"}),
            frozenset({"p2", "p3"}),
        }

    def test_fire_cd_extended_conflict(self, backend):
        # r2 = {{A,C},{B,D}} — the extended conflict between A/D and B/C.
        gpn = Gpn(figure7_net(), backend=backend)
        state1 = self.fire_ab(gpn)
        c = gpn.net.transition_id("C")
        d = gpn.net.transition_id("D")
        state2 = multiple_fire(gpn, state1, frozenset([c, d]))
        assert sets_named(gpn, state2.valid) == {
            frozenset({"A", "C"}),
            frozenset({"B", "D"}),
        }
        assert mapping_named(gpn, state2) == {frozenset({"p3", "p5"})} or (
            mapping_named(gpn, state2) == {frozenset({"p5"})}
        )

    def test_final_state_maps_to_single_marking(self, backend):
        # The paper: the final state maps to the single marking {p5}.
        gpn = Gpn(figure7_net(), backend=backend)
        state1 = self.fire_ab(gpn)
        c = gpn.net.transition_id("C")
        d = gpn.net.transition_id("D")
        state2 = multiple_fire(gpn, state1, frozenset([c, d]))
        assert mapping_named(gpn, state2) == {frozenset({"p5"})}

    def test_multiple_fire_requires_enabled(self, backend):
        gpn = Gpn(figure7_net(), backend=backend)
        state = gpn.initial_state()
        c = gpn.net.transition_id("C")
        with pytest.raises(ValueError):
            multiple_fire(gpn, state, frozenset([c]))


class TestFigure3:
    """The colored-token walkthrough (Section 3.1)."""

    def test_walkthrough(self, backend):
        gpn = Gpn(figure3_net(), backend=backend)
        net = gpn.net
        state = gpn.initial_state()
        a, b = net.transition_id("A"), net.transition_id("B")
        c, d = net.transition_id("C"), net.transition_id("D")

        state1 = multiple_fire(gpn, state, frozenset([a, b]))
        # p2 and p3 are "painted red" (A), p4 "green" (B).
        assert sets_named(gpn, state1.marking[net.place_id("p2")]) == {
            frozenset({"A", "C"}),
            frozenset({"A", "D"}),
        }
        single, multiple = enabled_families(gpn, state1)
        # "Transition D cannot fire!" — its inputs carry conflicting colors.
        assert d not in single
        assert d not in multiple
        # "Transition C, on the other hand, can fire."
        assert c in single

        state2 = single_fire(gpn, state1, c)
        assert not state2.marking[net.place_id("p5")].is_empty()

    def test_b_branch_is_a_dead_scenario(self, backend):
        # After {A,B}, the B scenarios enable nothing: classical marking
        # {p4} is a deadlock.
        gpn = Gpn(figure3_net(), backend=backend)
        net = gpn.net
        a, b = net.transition_id("A"), net.transition_id("B")
        state1 = multiple_fire(
            gpn, gpn.initial_state(), frozenset([a, b])
        )
        dead = dead_scenarios(gpn, state1)
        assert sets_named(gpn, dead) == {
            frozenset({"B", "C"}),
            frozenset({"B", "D"}),
        }
