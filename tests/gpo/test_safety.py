"""Tests for safety-property checking (screen + certification + monitor)."""

import pytest

from repro.analysis import explore
from repro.gpo import (
    MarkingConstraint,
    check_safety,
    monitor_net,
    mutual_exclusion_constraints,
    screen_safety,
)
from repro.models import asat, choice_net, conflict_pairs_net, nsdp, rw


class TestMarkingConstraint:
    def test_describe(self):
        c = MarkingConstraint(marked=("a", "b"), unmarked=("c",))
        assert c.describe() == "a & b & !c"
        assert MarkingConstraint().describe() == "true"

    def test_holds_in(self):
        c = MarkingConstraint(marked=("a",), unmarked=("b",))
        assert c.holds_in(frozenset({"a"}))
        assert not c.holds_in(frozenset({"a", "b"}))
        assert not c.holds_in(frozenset({"c"}))

    def test_mutual_exclusion_constraints(self):
        constraints = mutual_exclusion_constraints(["z", "x", "y"])
        assert len(constraints) == 3
        assert all(len(c.marked) == 2 for c in constraints)


class TestScreen:
    def test_violation_found_with_real_witness(self):
        net = rw(3)
        result = screen_safety(
            net, [MarkingConstraint(marked=("reading0", "reading1"))]
        )
        assert result is not None and not result.safe
        # The witness marking must be classically reachable.
        reachable = set(explore(net).states())
        assert net.marking_from_names(result.witness.marking) in reachable

    def test_clean_screen_returns_none(self):
        result = screen_safety(
            rw(2), [MarkingConstraint(marked=("writing0", "writing1"))]
        )
        assert result is None

    def test_screen_incompleteness_pinned(self):
        # The reduction skips the intermediate marking {a_out0, c1}: the
        # screen must stay silent even though the marking is reachable.
        # (This is exactly why check_safety certifies symbolically.)
        net = conflict_pairs_net(2)
        bad = MarkingConstraint(marked=("a_out0", "c1"))
        assert screen_safety(net, [bad]) is None


class TestCheckSafety:
    def test_certified_safe(self):
        result = check_safety(
            rw(3),
            mutual_exclusion_constraints(
                [f"writing{i}" for i in range(3)]
            ),
        )
        assert result.safe
        assert result.extras.get("certified")

    def test_screen_fast_path(self):
        result = check_safety(
            rw(3), [MarkingConstraint(marked=("reading0", "reading2"))]
        )
        assert not result.safe
        assert result.extras["engine"] == "gpo-screen"
        assert result.witness.trace  # screen witnesses carry traces

    def test_symbolic_catches_screen_blind_spot(self):
        net = conflict_pairs_net(2)
        bad = MarkingConstraint(marked=("a_out0", "c1"))
        result = check_safety(net, [bad])
        assert not result.safe
        assert result.extras["engine"] == "symbolic"

    def test_unmarked_constraints(self):
        # "a_out0 marked while c0 unmarked" is reachable (fire A0).
        net = conflict_pairs_net(1)
        result = check_safety(
            net,
            [MarkingConstraint(marked=("a_out0",), unmarked=("c0",))],
        )
        assert not result.safe
        # but "a_out0 and b_out0 together" is not
        result = check_safety(
            net, [MarkingConstraint(marked=("a_out0", "b_out0"))]
        )
        assert result.safe

    def test_asat_mutex(self):
        result = check_safety(
            asat(4),
            mutual_exclusion_constraints([f"use{i}" for i in range(4)]),
        )
        assert result.safe

    def test_nsdp_fork_consistency(self):
        # A fork cannot be on the table while its owner eats.
        result = check_safety(
            nsdp(3), [MarkingConstraint(marked=("fork0", "eat0"))]
        )
        assert result.safe

    def test_describe(self):
        safe = check_safety(
            rw(2), [MarkingConstraint(marked=("writing0", "writing1"))]
        )
        assert "safe" in safe.describe()
        unsafe = check_safety(
            rw(2), [MarkingConstraint(marked=("reading0",))]
        )
        assert "UNSAFE" in unsafe.describe()
        assert bool(safe) and not bool(unsafe)

    def test_agrees_with_explicit_model_checking(self):
        from repro.analysis import find_violation

        net = nsdp(2)
        patterns = [
            MarkingConstraint(marked=("eat0", "eat1")),
            MarkingConstraint(marked=("hasL0", "hasR0")),
            MarkingConstraint(marked=("eat0", "fork1")),
            MarkingConstraint(marked=("think0", "think1")),
        ]
        for constraint in patterns:
            explicit = find_violation(net, constraint.holds_in)
            ours = check_safety(net, [constraint])
            assert ours.safe == (explicit is None), constraint.describe()


class TestMonitorNet:
    def test_monitor_fires_iff_reachable(self):
        net = choice_net()
        instrumented, monitor = monitor_net(
            net, MarkingConstraint(marked=("p1",))
        )
        graph = explore(instrumented)
        assert any(label == monitor for _, label, _ in graph.edges())

    def test_monitor_silent_when_unreachable(self):
        net = conflict_pairs_net(1)
        instrumented, monitor = monitor_net(
            net, MarkingConstraint(marked=("a_out0", "b_out0"))
        )
        graph = explore(instrumented)
        assert not any(label == monitor for _, label, _ in graph.edges())

    def test_rejects_negative_constraints(self):
        with pytest.raises(ValueError):
            monitor_net(
                choice_net(), MarkingConstraint(unmarked=("p1",))
            )
        with pytest.raises(ValueError):
            monitor_net(choice_net(), MarkingConstraint())

    def test_monitor_visible_to_gpo(self):
        # The instrumented monitor participates in the conflict structure,
        # so GPO observes the intermediate marking the bare screen misses.
        from repro.gpo import GpoOptions, explore_gpo

        net = conflict_pairs_net(2)
        instrumented, monitor = monitor_net(
            net, MarkingConstraint(marked=("a_out0", "c1"))
        )
        result = explore_gpo(
            instrumented, GpoOptions(on_deadlock="continue")
        )
        fired = {label for _, label, _ in result.graph.edges()}
        assert any(monitor in label for label in fired)
