"""Property tests for the generalized partial-order analysis.

The soundness theorem this reproduction rests on, checked empirically:

* **verdict equivalence** — GPO reports a deadlock iff the full classical
  reachability graph contains one;
* **mapping soundness** — every classical marking covered by an explored
  GPN state is classically reachable;
* **witness validity** — every reported dead scenario maps to a genuinely
  deadlocked, reachable classical marking;
* **firing consistency** (Defs. 3.3/3.6 vs Def. 2.4) — single firing
  commutes with classical firing through the Def. 3.4 mapping.
"""

from hypothesis import HealthCheck, given, settings

from repro.analysis import explore
from repro.analysis.stats import ExplorationLimitReached
from repro.gpo import (
    Gpn,
    GpoOptions,
    explore_gpo,
    mapping,
    s_enabled,
    scenario_marking,
    single_fire,
)
from repro.net.exceptions import UnsafeNetError

from tests.conftest import safe_nets, state_machine_nets

COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: GPN graphs can exceed the classical graph on adversarial random nets
#: (see DESIGN.md "Known limitation"); budget the explorations and skip
#: the rare blow-ups rather than burn minutes on them.
GPN_BUDGET = 4000


def _full_or_none(net, max_states=3000):
    try:
        return explore(net, max_states=max_states)
    except UnsafeNetError:
        return None


def _gpo_or_none(net, **kwargs):
    kwargs.setdefault("max_states", GPN_BUDGET)
    try:
        return explore_gpo(net, GpoOptions(**kwargs))
    except ExplorationLimitReached:
        return None


@given(net=safe_nets())
@settings(**COMMON)
def test_verdict_matches_full_on_random_nets(net):
    full = _full_or_none(net)
    if full is None:
        return
    result = _gpo_or_none(net, backend="explicit", validate=True)
    if result is None:
        return
    assert result.has_deadlock == bool(full.deadlocks)


@given(net=state_machine_nets())
@settings(**COMMON)
def test_verdict_matches_full_on_state_machines(net):
    full = explore(net, max_states=5000)
    result = _gpo_or_none(net, backend="bdd")
    if result is None:
        return
    assert result.has_deadlock == bool(full.deadlocks)


@given(net=safe_nets(max_places=6, max_transitions=5))
@settings(**COMMON)
def test_mapping_soundness(net):
    full = _full_or_none(net)
    if full is None:
        return
    reachable = set(full.states())
    result = _gpo_or_none(net, backend="explicit", on_deadlock="continue")
    if result is None:
        return
    for state in result.graph.states():
        assert mapping(result.gpn, state) <= reachable


@given(net=safe_nets(max_places=6, max_transitions=5))
@settings(**COMMON)
def test_witnesses_are_real_deadlocks(net):
    full = _full_or_none(net)
    if full is None:
        return
    reachable = set(full.states())
    result = _gpo_or_none(net, backend="explicit", on_deadlock="continue")
    if result is None:
        return
    for state, dead in result.deadlock_states:
        for scenario in dead.iter_sets():
            marking = scenario_marking(result.gpn, state, scenario)
            assert marking in reachable
            assert net.is_deadlocked(marking)


@given(net=safe_nets(max_places=6, max_transitions=5))
@settings(**COMMON)
def test_single_firing_consistency(net):
    """Def. 3.3 vs Def. 2.4 through the mapping.

    From the initial GPN state, for any single-enabled transition t:
    mapping(s_update(s, t)) == { classical-fire(m, t) for enabled m }
                             ∪ { m unchanged for disabled m }.
    """
    if _full_or_none(net, max_states=200) is None:
        return
    gpn = Gpn(net, backend="explicit")
    state = gpn.initial_state()
    for t in range(net.num_transitions):
        enabled_family = s_enabled(gpn, state, t)
        if enabled_family.is_empty():
            continue
        after = single_fire(gpn, state, t)
        expected = set()
        for scenario in state.valid.iter_sets():
            classical = scenario_marking(gpn, state, scenario)
            if scenario in set(enabled_family.iter_sets()):
                expected.add(net.fire(t, classical))
            else:
                expected.add(classical)
        assert mapping(gpn, after) == expected


@given(net=state_machine_nets())
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_backends_agree(net):
    explicit = _gpo_or_none(net, backend="explicit")
    bdd = _gpo_or_none(net, backend="bdd")
    if explicit is None or bdd is None:
        return
    assert explicit.has_deadlock == bdd.has_deadlock
    assert explicit.graph.num_states == bdd.graph.num_states
