"""Tests for candidate-MCS selection and the single-firing persistent sets."""

from repro.gpo import (
    Gpn,
    candidate_mcs,
    enabled_families,
    multiple_fire,
    single_enabled_mcs,
)
from repro.models import (
    choice_net,
    concurrent_net,
    conflict_pairs_net,
    figure3_net,
    nsdp,
)


def names(gpn, component):
    return frozenset(gpn.net.transitions[t] for t in component)


class TestCandidateMcs:
    def test_conflict_pairs_all_candidates(self):
        gpn = Gpn(conflict_pairs_net(3), backend="explicit")
        _, multiple = enabled_families(gpn, gpn.initial_state())
        candidates = candidate_mcs(gpn, multiple)
        assert {names(gpn, c) for c in candidates} == {
            frozenset({"A0", "B0"}),
            frozenset({"A1", "B1"}),
            frozenset({"A2", "B2"}),
        }

    def test_independent_transitions_singletons(self):
        gpn = Gpn(concurrent_net(3), backend="explicit")
        _, multiple = enabled_families(gpn, gpn.initial_state())
        candidates = candidate_mcs(gpn, multiple)
        assert all(len(c) == 1 for c in candidates)
        assert len(candidates) == 3

    def test_partition_property(self):
        # Candidates partition the multiple-enabled transitions.
        gpn = Gpn(nsdp(3), backend="bdd")
        _, multiple = enabled_families(gpn, gpn.initial_state())
        candidates = candidate_mcs(gpn, multiple)
        union = set().union(*candidates) if candidates else set()
        assert union == set(multiple)
        total = sum(len(c) for c in candidates)
        assert total == len(union)  # disjoint

    def test_enabled_induced_not_full_component(self):
        # NSDP initially: only the first-fork grabs are enabled, yet they
        # form candidates even though their *full* conflict component also
        # contains the (disabled) second-fork grabs.
        gpn = Gpn(nsdp(2), backend="explicit")
        single, multiple = enabled_families(gpn, gpn.initial_state())
        candidates = candidate_mcs(gpn, multiple)
        assert candidates, "NSDP must have candidates initially"
        fired = frozenset().union(*candidates)
        full_components = {
            frozenset(gpn.info.mcs(t)) for t in fired
        }
        assert any(not (c <= fired) for c in full_components), (
            "the test net should have disabled conflicters outside the "
            "candidate"
        )

    def test_no_candidates_in_dead_state(self):
        gpn = Gpn(choice_net(), backend="explicit")
        state = multiple_fire(gpn, gpn.initial_state(), frozenset([0, 1]))
        _, multiple = enabled_families(gpn, state)
        assert candidate_mcs(gpn, multiple) == []


class TestSingleEnabledMcs:
    def test_fully_enabled_component_found(self):
        gpn = Gpn(choice_net(), backend="explicit")
        single, _ = enabled_families(gpn, gpn.initial_state())
        component = single_enabled_mcs(gpn, single)
        assert component is not None
        assert names(gpn, component) == {"a", "b"}

    def test_partially_enabled_component_skipped(self):
        # Figure 3 after {A,B}: C is single-enabled but D is not, so the
        # full component {C,D} is not eligible.
        gpn = Gpn(figure3_net(), backend="explicit")
        a = gpn.net.transition_id("A")
        b = gpn.net.transition_id("B")
        state = multiple_fire(gpn, gpn.initial_state(), frozenset([a, b]))
        single, _ = enabled_families(gpn, state)
        assert single_enabled_mcs(gpn, single) is None

    def test_smallest_component_preferred(self):
        from repro.net import NetBuilder

        builder = NetBuilder()
        builder.place("big", marked=True)
        builder.place("small", marked=True)
        for name in ("o1", "o2", "o3", "o4", "o5"):
            builder.place(name)
        builder.transition("x", inputs=["big"], outputs=["o1"])
        builder.transition("y", inputs=["big"], outputs=["o2"])
        builder.transition("z", inputs=["big"], outputs=["o3"])
        builder.transition("s", inputs=["small"], outputs=["o4"])
        builder.transition("t", inputs=["small"], outputs=["o5"])
        gpn = Gpn(builder.build(), backend="explicit")
        single, _ = enabled_families(gpn, gpn.initial_state())
        component = single_enabled_mcs(gpn, single)
        assert component is not None
        assert names(gpn, component) == {"s", "t"}
