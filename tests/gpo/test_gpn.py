"""Tests for GPN construction and state identity."""

import pytest

from repro.gpo import Gpn, GpnState
from repro.models import choice_net, concurrent_net, conflict_pairs_net


class TestConstruction:
    def test_r0_counts(self):
        # n independent conflict pairs: 2^n scenarios.
        for n in (1, 2, 3, 5):
            gpn = Gpn(conflict_pairs_net(n), backend="explicit")
            assert gpn.r0.count() == 2**n

    def test_no_conflicts_single_scenario(self):
        gpn = Gpn(concurrent_net(4), backend="explicit")
        assert gpn.r0.count() == 1
        only = gpn.r0.any_set()
        assert only == frozenset(range(4))  # every transition chosen

    def test_initial_state_marking(self):
        net = choice_net()
        gpn = Gpn(net, backend="explicit")
        state = gpn.initial_state()
        assert state.marking[net.place_id("p0")] == gpn.r0
        assert state.marking[net.place_id("p1")].is_empty()
        assert state.valid == gpn.r0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            Gpn(choice_net(), backend="quantum")  # type: ignore[arg-type]

    def test_backends_agree_on_r0(self):
        net = conflict_pairs_net(3)
        explicit = Gpn(net, backend="explicit")
        bdd = Gpn(net, backend="bdd")
        assert explicit.r0.as_frozensets() == bdd.r0.as_frozensets()


class TestStateIdentity:
    def test_equal_states_hash_equal(self):
        gpn = Gpn(choice_net(), backend="bdd")
        s1 = gpn.initial_state()
        s2 = gpn.initial_state()
        assert s1 == s2
        assert hash(s1) == hash(s2)

    def test_distinct_states_differ(self):
        from repro.gpo import multiple_fire

        gpn = Gpn(choice_net(), backend="bdd")
        s0 = gpn.initial_state()
        s1 = multiple_fire(gpn, s0, frozenset([0, 1]))
        assert s0 != s1

    def test_repr(self):
        gpn = Gpn(choice_net(), backend="explicit")
        assert "scenarios=2" in repr(gpn.initial_state())


class TestLabels:
    def test_set_label_sorted(self):
        net = conflict_pairs_net(2)
        gpn = Gpn(net, backend="explicit")
        label = gpn.set_label(
            frozenset(
                [net.transition_id("B0"), net.transition_id("A1")]
            )
        )
        assert label == "{A1,B0}"

    def test_scenario_label(self):
        net = choice_net()
        gpn = Gpn(net, backend="explicit")
        assert gpn.scenario_label(frozenset([net.transition_id("a")])) == "{a}"

    def test_iter_place_families_skips_empty(self):
        net = choice_net()
        gpn = Gpn(net, backend="explicit")
        pairs = dict(gpn.iter_place_families(gpn.initial_state()))
        assert set(pairs) == {"p0"}
