"""Tests for job specs and budgeted in-process execution."""

import pytest

from repro.engine.jobs import (
    ANALYZERS,
    Budget,
    VerificationJob,
    execute_job,
    is_conclusive,
)
from repro.models import choice_net, nsdp, rw


class TestVerificationJob:
    def test_label(self):
        job = VerificationJob(net=choice_net(), method="gpo")
        assert job.label == "choice/gpo"

    def test_jobs_are_picklable(self):
        import pickle

        job = VerificationJob(net=nsdp(2), method="full")
        clone = pickle.loads(pickle.dumps(job))
        assert clone.net == job.net
        assert clone.method == "full"
        assert clone.budget == job.budget

    def test_cache_key_varies_by_method_and_budget(self):
        net = choice_net()
        base = VerificationJob(net=net, method="gpo")
        assert (
            base.cache_key_material()
            == VerificationJob(net=net, method="gpo").cache_key_material()
        )
        assert (
            base.cache_key_material()
            != VerificationJob(net=net, method="full").cache_key_material()
        )
        tighter = VerificationJob(
            net=net, method="gpo", budget=Budget(max_states=7)
        )
        assert base.cache_key_material() != tighter.cache_key_material()

    def test_unknown_query_rejected(self):
        job = VerificationJob(net=choice_net(), query="liveness")
        with pytest.raises(ValueError):
            execute_job(job)

    def test_unknown_method_rejected(self):
        job = VerificationJob(net=choice_net(), method="quantum")
        with pytest.raises(ValueError):
            execute_job(job)


class TestCooperativeDeadlines:
    """Budget.max_seconds now binds every analyzer, not just symbolic."""

    @pytest.mark.parametrize(
        "method", ["full", "stubborn", "gpo", "unfolding", "symbolic"]
    )
    def test_zero_time_budget_aborts(self, method):
        job = VerificationJob(
            net=nsdp(4),
            method=method,
            budget=Budget(max_states=None, max_seconds=0.0),
        )
        result = execute_job(job)
        assert not result.exhaustive
        assert "aborted" in result.extras
        assert "0s" in result.extras["aborted"]

    @pytest.mark.parametrize(
        "method", ["full", "stubborn", "gpo", "unfolding", "symbolic"]
    )
    def test_generous_time_budget_completes(self, method):
        job = VerificationJob(
            net=choice_net(),
            method=method,
            budget=Budget(max_seconds=60.0),
        )
        result = execute_job(job)
        assert result.exhaustive
        assert result.deadlock


class TestOverrunProgressReporting:
    def test_state_overrun_reports_actual_progress(self):
        # The driver stops exactly at the state budget, so the bounded
        # result reports the real stored-state count (== the budget).
        job = VerificationJob(
            net=nsdp(4),
            method="stubborn",
            budget=Budget(max_states=10, max_seconds=None),
        )
        result = execute_job(job)
        assert not result.exhaustive
        assert result.states == 10
        assert result.extras["aborted"] == "> 10 states"

    def test_full_analyzer_bounded_graph_matches_budget(self):
        job = VerificationJob(
            net=nsdp(4),
            method="full",
            budget=Budget(max_states=10, max_seconds=None),
        )
        result = execute_job(job)
        assert not result.exhaustive
        assert result.states == 10  # bounded re-exploration keeps the cap


class TestIsConclusive:
    def test_verdicts(self):
        deadlock = execute_job(VerificationJob(net=choice_net()))
        assert is_conclusive(deadlock)
        free = execute_job(VerificationJob(net=rw(2), method="gpo"))
        assert not free.deadlock
        assert is_conclusive(free)
        bounded = execute_job(
            VerificationJob(
                net=nsdp(6),
                method="stubborn",
                budget=Budget(max_states=10, max_seconds=None),
            )
        )
        assert not is_conclusive(bounded)
        assert not is_conclusive(None)


class TestBackwardCompatibility:
    def test_runner_reexports(self):
        from repro.harness.runner import ANALYZERS as legacy_analyzers
        from repro.harness.runner import Budget as legacy_budget

        assert legacy_analyzers is ANALYZERS
        assert legacy_budget is Budget
