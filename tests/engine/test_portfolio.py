"""Tests for portfolio racing."""

import os
import time

import pytest

from repro.engine.cache import ResultCache
from repro.engine.events import MemoryEventSink
from repro.engine.jobs import ANALYZERS, Budget
from repro.engine.portfolio import run_race
from repro.models import choice_net, nsdp, rw

requires_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="test analyzers need fork inheritance"
)


def _sleepy_analyzer(net, **kwargs):
    time.sleep(60)


@pytest.fixture
def sleepy_analyzer():
    ANALYZERS["sleepy"] = _sleepy_analyzer
    yield
    ANALYZERS.pop("sleepy", None)


class TestParallelRace:
    @requires_fork
    def test_first_conclusive_wins_and_losers_are_killed(
        self, sleepy_analyzer
    ):
        start = time.perf_counter()
        outcome = run_race(
            choice_net(),
            methods=("sleepy", "gpo"),
            budget=Budget(max_seconds=30.0),
            jobs=2,
        )
        wall = time.perf_counter() - start
        assert outcome.conclusive
        assert outcome.winner.job.method == "gpo"
        assert outcome.winner.result.deadlock
        by_method = {o.job.method: o for o in outcome.results}
        assert by_method["sleepy"].status == "cancelled"
        assert wall < 10  # nowhere near the sleeper's 60s

    def test_all_methods_agree_net(self):
        outcome = run_race(
            rw(3), methods=("gpo", "symbolic"), jobs=2
        )
        assert outcome.conclusive
        assert not outcome.winner.result.deadlock

    def test_inconclusive_portfolio(self):
        # Tiny state budgets, no deadlock found: nobody concludes.
        outcome = run_race(
            nsdp(6),
            methods=("stubborn", "full"),
            budget=Budget(max_states=5, max_seconds=None),
            jobs=2,
        )
        assert not outcome.conclusive
        assert outcome.winner is None
        assert len(outcome.results) == 2

    def test_describe_mentions_winner(self):
        outcome = run_race(choice_net(), methods=("gpo",), jobs=2)
        text = outcome.describe()
        assert "DEADLOCK" in text
        assert "gpo" in text


class TestSequentialFallback:
    def test_stops_at_first_conclusive(self):
        sink = MemoryEventSink()
        outcome = run_race(
            choice_net(),
            methods=("gpo", "full", "symbolic"),
            jobs=1,
            events=sink,
        )
        assert outcome.conclusive
        assert outcome.winner.job.method == "gpo"
        # Later methods never started: exactly one job ran.
        assert len(outcome.results) == 1
        assert sink.kinds().count("started") == 1

    def test_deterministic_order(self):
        first = run_race(rw(2), methods=("symbolic", "gpo"), jobs=1)
        second = run_race(rw(2), methods=("symbolic", "gpo"), jobs=1)
        assert first.winner.job.method == "symbolic"
        assert second.winner.job.method == "symbolic"

    def test_falls_through_inconclusive_methods(self):
        outcome = run_race(
            nsdp(6),
            methods=("stubborn", "gpo"),
            budget=Budget(max_states=5, max_seconds=None),
            jobs=1,
        )
        # stubborn is bounded-out, but gpo needs only a couple of states.
        assert outcome.conclusive
        assert outcome.winner.job.method == "gpo"
        assert len(outcome.results) == 2


class TestRaceCaching:
    def test_cached_verdict_wins_instantly(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_race(
            choice_net(), methods=("gpo",), jobs=2, cache=cache
        )
        assert first.winner.status == "ok"
        second = run_race(
            choice_net(), methods=("gpo",), jobs=2, cache=cache
        )
        assert second.winner.status == "cached"
        assert second.winner.result.deadlock
