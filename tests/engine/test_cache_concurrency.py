"""ResultCache under concurrency and corruption: atomic puts, lock-free gets."""

from __future__ import annotations

import json
import threading

from repro.engine.cache import FORMAT_VERSION, ResultCache
from repro.engine.jobs import Budget, VerificationJob, execute_job
from repro.models import nsdp


def make_job(size: int = 2) -> VerificationJob:
    return VerificationJob(net=nsdp(size), method="gpo", budget=Budget())


class TestConcurrentAccess:
    def test_parallel_put_get_never_torn(self, tmp_path):
        """Hammer one entry from many threads; every read is miss or whole."""
        cache = ResultCache(tmp_path)
        job = make_job()
        result = execute_job(job)
        errors: list[BaseException] = []
        barrier = threading.Barrier(8)

        def worker(writer: bool) -> None:
            try:
                barrier.wait()
                for _ in range(50):
                    if writer:
                        cache.put(job, result)
                    else:
                        got = cache.get(job)
                        if got is not None:
                            # A complete entry, never a partial one.
                            assert got.deadlock == result.deadlock
                            assert got.states == result.states
            except BaseException as exc:  # noqa: BLE001 - collect, assert later
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i % 2 == 0,))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert cache.get(job) is not None

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = make_job()
        result = execute_job(job)
        for _ in range(10):
            cache.put(job, result)
        leftovers = [p for p in tmp_path.rglob("*") if ".tmp." in p.name]
        assert leftovers == []

    def test_stats_counted_under_threads(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = make_job()
        cache.put(job, execute_job(job))

        def reader() -> None:
            for _ in range(100):
                assert cache.get(job) is not None

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.hits == 400


class TestCorruptionTolerance:
    def entry_path(self, cache: ResultCache, job: VerificationJob):
        return cache._path(cache.key(job))

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = make_job()
        cache.put(job, execute_job(job))
        path = self.entry_path(cache, job)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.get(job) is None

    def test_garbage_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = make_job()
        path = self.entry_path(cache, job)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not json at all {{{")
        assert cache.get(job) is None

    def test_wrong_schema_shape_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = make_job()
        path = self.entry_path(cache, job)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps({"version": FORMAT_VERSION, "result": {"bogus": 1}})
        )
        assert cache.get(job) is None

    def test_old_format_version_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = make_job()
        cache.put(job, execute_job(job))
        path = self.entry_path(cache, job)
        payload = json.loads(path.read_text())
        payload["version"] = FORMAT_VERSION - 1
        path.write_text(json.dumps(payload))
        assert cache.get(job) is None

    def test_corruption_recovers_after_rewrite(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = make_job()
        result = execute_job(job)
        cache.put(job, result)
        self.entry_path(cache, job).write_text("garbage")
        assert cache.get(job) is None
        cache.put(job, result)
        got = cache.get(job)
        assert got is not None and got.deadlock == result.deadlock
