"""Tests for the process-isolated worker pool and hard preemption."""

import os
import time

import pytest

from repro.engine.events import MemoryEventSink
from repro.engine.jobs import ANALYZERS, Budget, VerificationJob
from repro.engine.pool import WorkerPool
from repro.models import choice_net, nsdp
from repro.net.exceptions import UnsafeNetError

requires_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="test analyzers need fork inheritance"
)


def _sleepy_analyzer(net, **kwargs):
    """Ignores every cooperative budget — only SIGTERM stops it."""
    time.sleep(60)


def _crashy_analyzer(net, **kwargs):
    os._exit(3)


def _unsafe_analyzer(net, **kwargs):
    raise UnsafeNetError("t", "p")


@pytest.fixture
def rogue_analyzers():
    """Temporarily register analyzers that misbehave on purpose."""
    ANALYZERS["sleepy"] = _sleepy_analyzer
    ANALYZERS["crashy"] = _crashy_analyzer
    ANALYZERS["unsafe"] = _unsafe_analyzer
    yield
    for name in ("sleepy", "crashy", "unsafe"):
        ANALYZERS.pop(name, None)


class TestHappyPath:
    def test_single_job(self):
        outcome = WorkerPool(1).run_one(VerificationJob(net=choice_net()))
        assert outcome.status == "ok"
        assert outcome.result.deadlock
        assert outcome.worker_pid is not None
        assert outcome.worker_pid != os.getpid()

    def test_parallel_results_keep_submission_order(self):
        jobs = [
            VerificationJob(net=nsdp(2), method=m)
            for m in ("full", "stubborn", "symbolic", "gpo")
        ]
        outcomes = WorkerPool(4).run(jobs)
        assert [o.job.method for o in outcomes] == [
            "full", "stubborn", "symbolic", "gpo",
        ]
        assert all(o.status == "ok" for o in outcomes)
        # Same verdict from every analyzer, computed in separate processes.
        assert len({o.result.deadlock for o in outcomes}) == 1

    def test_peak_rss_reported(self):
        outcome = WorkerPool(1).run_one(VerificationJob(net=choice_net()))
        assert outcome.peak_rss_kb is None or outcome.peak_rss_kb > 0


@requires_fork
class TestHardPreemption:
    def test_sleeper_killed_within_a_second_of_deadline(self, rogue_analyzers):
        job = VerificationJob(
            net=choice_net(),
            method="sleepy",
            budget=Budget(max_seconds=0.2),
        )
        start = time.perf_counter()
        outcome = WorkerPool(1).run_one(job)
        wall = time.perf_counter() - start
        assert outcome.status == "killed"
        assert not outcome.result.exhaustive
        assert "aborted" in outcome.result.extras
        # deadline 0.2s + grace 0.5s + scheduling slack << deadline + ~1s
        assert wall < 1.2

    def test_no_time_budget_means_no_preemption(self, rogue_analyzers):
        # A quick real job with unlimited time must not be killed.
        job = VerificationJob(
            net=choice_net(),
            method="gpo",
            budget=Budget(max_seconds=None),
        )
        outcome = WorkerPool(1).run_one(job)
        assert outcome.status == "ok"


@requires_fork
class TestCrashIsolation:
    def test_worker_hard_crash_reported_not_raised(self, rogue_analyzers):
        outcome = WorkerPool(1).run_one(
            VerificationJob(net=choice_net(), method="crashy")
        )
        assert outcome.status == "error"
        assert "exit code 3" in outcome.error
        assert not outcome.result.exhaustive

    def test_unsafe_net_error_reported_not_raised(self, rogue_analyzers):
        outcome = WorkerPool(1).run_one(
            VerificationJob(net=choice_net(), method="unsafe")
        )
        assert outcome.status == "error"
        assert "UnsafeNetError" in outcome.error
        assert not outcome.result.exhaustive

    def test_crash_does_not_poison_siblings(self, rogue_analyzers):
        jobs = [
            VerificationJob(net=choice_net(), method="crashy"),
            VerificationJob(net=choice_net(), method="gpo"),
        ]
        outcomes = WorkerPool(2).run(jobs)
        assert outcomes[0].status == "error"
        assert outcomes[1].status == "ok"
        assert outcomes[1].result.deadlock


class TestEvents:
    def test_lifecycle_events_emitted(self):
        sink = MemoryEventSink()
        WorkerPool(1, events=sink).run_one(VerificationJob(net=choice_net()))
        assert sink.kinds() == ["queued", "started", "finished"]
        finished = sink.events[-1]
        assert finished.wall_seconds is not None
        assert finished.net == "choice"

    @requires_fork
    def test_killed_event_emitted(self, rogue_analyzers):
        sink = MemoryEventSink()
        job = VerificationJob(
            net=choice_net(),
            method="sleepy",
            budget=Budget(max_seconds=0.1),
        )
        WorkerPool(1, events=sink).run_one(job)
        assert sink.kinds() == ["queued", "started", "killed"]
