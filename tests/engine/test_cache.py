"""Tests for the canonical-hash result cache."""

from repro.engine.cache import ResultCache, result_from_dict, result_to_dict
from repro.engine.events import MemoryEventSink
from repro.engine.jobs import Budget, VerificationJob, execute_job
from repro.engine.pool import WorkerPool
from repro.models import choice_net, nsdp
from repro.net import NetBuilder


def _shuffled_choice(name="choice"):
    """The choice net with places/transitions declared in reverse order."""
    builder = NetBuilder(name)
    builder.place("p2")
    builder.place("p1")
    builder.place("p0", marked=True)
    builder.transition("b", inputs=["p0"], outputs=["p2"])
    builder.transition("a", inputs=["p0"], outputs=["p1"])
    return builder.build()


class TestSerialization:
    def test_roundtrip_preserves_every_field(self):
        result = execute_job(VerificationJob(net=choice_net()))
        clone = result_from_dict(result_to_dict(result))
        assert clone.analyzer == result.analyzer
        assert clone.net_name == result.net_name
        assert clone.states == result.states
        assert clone.edges == result.edges
        assert clone.deadlock == result.deadlock
        assert clone.exhaustive == result.exhaustive
        assert clone.extras == result.extras
        assert clone.witness is not None
        assert clone.witness.marking == result.witness.marking
        assert clone.witness.trace == result.witness.trace


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = VerificationJob(net=choice_net())
        assert cache.get(job) is None
        result = execute_job(job)
        cache.put(job, result)
        hit = cache.get(job)
        assert hit is not None
        assert hit.deadlock == result.deadlock
        assert hit.states == result.states
        assert hit.extras.get("cache") == "hit"
        assert (cache.hits, cache.misses) == (1, 1)

    def test_key_is_stable_across_declaration_order(self, tmp_path):
        cache = ResultCache(tmp_path)
        job_a = VerificationJob(net=choice_net())
        job_b = VerificationJob(net=_shuffled_choice())
        assert cache.key(job_a) == cache.key(job_b)

    def test_key_distinguishes_structure_and_budget(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = VerificationJob(net=choice_net())
        assert cache.key(base) != cache.key(
            VerificationJob(net=nsdp(2))
        )
        assert cache.key(base) != cache.key(
            VerificationJob(net=choice_net(), budget=Budget(max_states=1))
        )

    def test_hit_patches_net_name(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = VerificationJob(net=choice_net())
        cache.put(job, execute_job(job))
        renamed = VerificationJob(net=_shuffled_choice(name="other"))
        hit = cache.get(renamed)
        assert hit is not None
        assert hit.net_name == "other"

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = VerificationJob(net=choice_net())
        cache.put(job, execute_job(job))
        path = cache._path(cache.key(job))
        path.write_text("{not json")
        assert cache.get(job) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = VerificationJob(net=choice_net())
        cache.put(job, execute_job(job))
        assert cache.clear() == 1
        assert cache.get(job) is None


class TestPoolIntegration:
    def test_cache_hit_skips_recomputation(self, tmp_path):
        cache = ResultCache(tmp_path)
        sink = MemoryEventSink()
        pool = WorkerPool(1, cache=cache, events=sink)
        job = VerificationJob(net=nsdp(2), method="gpo")

        first = pool.run_one(job)
        assert first.status == "ok"
        second = pool.run_one(job)
        assert second.status == "cached"
        assert second.worker_pid is None  # no process was spawned
        assert "cache_hit" in sink.kinds()

        # The cached result carries the same verdict and counts.
        assert second.result.deadlock == first.result.deadlock
        assert second.result.states == first.result.states
        assert second.result.exhaustive == first.result.exhaustive
