"""Tests for the JSONL lifecycle-event stream."""

import json

from repro.engine.events import (
    JobEvent,
    JsonlEventSink,
    MemoryEventSink,
    NullEventSink,
    read_events,
)
from repro.engine.jobs import VerificationJob
from repro.engine.pool import WorkerPool
from repro.models import choice_net


class TestJobEvent:
    def test_to_json_is_compact_and_valid(self):
        event = JobEvent(
            kind="finished",
            job="choice/gpo",
            method="gpo",
            net="choice",
            timestamp=123.0,
            wall_seconds=0.5,
        )
        payload = json.loads(event.to_json())
        assert payload["kind"] == "finished"
        assert payload["wall_seconds"] == 0.5
        assert "peak_rss_kb" not in payload  # None fields are omitted

    def test_null_sink_swallows(self):
        NullEventSink().emit(
            JobEvent("queued", "j", "gpo", "n", timestamp=0.0)
        )


class TestJsonlSink:
    def test_pool_writes_parseable_jsonl(self, tmp_path):
        log = tmp_path / "events.jsonl"
        with JsonlEventSink(log) as sink:
            WorkerPool(1, events=sink).run_one(
                VerificationJob(net=choice_net())
            )
        lines = log.read_text().strip().splitlines()
        assert len(lines) == 3
        kinds = [json.loads(line)["kind"] for line in lines]
        assert kinds == ["queued", "started", "finished"]
        finished = json.loads(lines[-1])
        assert finished["net"] == "choice"
        assert finished["wall_seconds"] >= 0.0
        assert finished["detail"] == "DEADLOCK"

    def test_appends_across_sinks(self, tmp_path):
        log = tmp_path / "events.jsonl"
        for _ in range(2):
            with JsonlEventSink(log) as sink:
                WorkerPool(1, events=sink).run_one(
                    VerificationJob(net=choice_net())
                )
        assert len(log.read_text().strip().splitlines()) == 6

    def test_read_events_roundtrip(self, tmp_path):
        log = tmp_path / "events.jsonl"
        with JsonlEventSink(log) as sink:
            WorkerPool(1, events=sink).run_one(
                VerificationJob(net=choice_net())
            )
        events = read_events(log)
        assert [e.kind for e in events] == ["queued", "started", "finished"]
        assert all(isinstance(e, JobEvent) for e in events)
        assert events[-1].method == "gpo"


class TestMemorySink:
    def test_kinds_helper(self):
        sink = MemoryEventSink()
        WorkerPool(1, events=sink).run_one(VerificationJob(net=choice_net()))
        assert sink.kinds() == ["queued", "started", "finished"]
