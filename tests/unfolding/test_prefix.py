"""Tests for McMillan prefix construction."""

import pytest

from repro.models import (
    choice_net,
    concurrent_net,
    conflict_pairs_net,
    figure3_net,
    nsdp,
)
from repro.unfolding import unfold


class TestStructure:
    def test_concurrent_net_prefix_is_the_net(self):
        # No conflicts, no reuse: the unfolding is isomorphic to the net.
        net = concurrent_net(4)
        prefix = unfold(net)
        assert prefix.num_events == 4
        assert prefix.num_conditions == 8
        assert prefix.num_cutoffs == 0

    def test_choice_prefix(self):
        prefix = unfold(choice_net())
        assert prefix.num_events == 2
        assert prefix.num_conditions == 3  # p0 + the two outputs

    def test_conflict_pairs_prefix_linear(self):
        # 2n events for n pairs — the prefix never multiplies branches.
        for n in (1, 2, 4, 6):
            prefix = unfold(conflict_pairs_net(n))
            assert prefix.num_events == 2 * n

    def test_figure3(self):
        net = figure3_net()
        prefix = unfold(net)
        labels = sorted(
            prefix.event_label(e.index) for e in prefix.events
        )
        # D never gets an event: its preset conditions are in conflict.
        assert labels == ["A", "B", "C"]

    def test_cycle_truncated_by_cutoffs(self):
        prefix = unfold(nsdp(2))
        assert prefix.num_cutoffs > 0
        assert prefix.num_events < 100  # finite despite the cyclic net

    def test_max_events_guard(self):
        prefix = unfold(nsdp(3), max_events=10)
        assert prefix.num_events == 10

    def test_labels(self):
        net = choice_net()
        prefix = unfold(net)
        assert prefix.condition_label(0) == "p0"
        assert prefix.event_label(0) in ("a", "b")

    def test_local_configs_are_causally_closed(self):
        prefix = unfold(nsdp(2))
        for event in prefix.events:
            for b in event.preset:
                producer = prefix.conditions[b].producer
                if producer is not None:
                    assert producer in event.local_config

    def test_local_markings_are_reachable(self):
        from repro.analysis import reachable_markings

        net = nsdp(2)
        reachable = reachable_markings(net)
        prefix = unfold(net)
        assert prefix.local_markings() <= reachable

    def test_repr(self):
        assert "events=" in repr(unfold(choice_net()))
