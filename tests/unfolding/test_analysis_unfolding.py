"""Completeness and deadlock tests for prefix-based analysis."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis import has_deadlock, reachable_markings
from repro.models import (
    bounded_buffer,
    choice_net,
    conflict_pairs_net,
    nsdp,
    over,
    rw,
)
from repro.unfolding import analyze, deadlock_via_prefix, prefix_markings, unfold
from tests.conftest import state_machine_nets


class TestCompleteness:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: choice_net(),
            lambda: conflict_pairs_net(3),
            lambda: nsdp(2),
            lambda: over(2),
            lambda: rw(3),
            lambda: bounded_buffer(1, 1, 1),
        ],
    )
    def test_prefix_represents_every_reachable_marking(self, make):
        net = make()
        prefix = unfold(net)
        assert prefix_markings(prefix) == reachable_markings(net)


class TestDeadlock:
    @pytest.mark.parametrize(
        "make,expected",
        [
            (lambda: nsdp(2), True),
            (lambda: over(2), True),
            (lambda: rw(3), False),
            (lambda: bounded_buffer(1, 1, 1), False),
        ],
    )
    def test_verdicts(self, make, expected):
        net = make()
        dead = deadlock_via_prefix(net, unfold(net))
        assert (dead is not None) == expected
        if dead is not None:
            assert net.is_deadlocked(dead)


class TestAnalyze:
    def test_result_fields(self):
        result = analyze(nsdp(2))
        assert result.analyzer == "unfolding"
        assert result.deadlock
        assert result.extras["cutoffs"] > 0
        assert result.witness is not None

    def test_truncated_reports_non_exhaustive(self):
        result = analyze(nsdp(3), max_events=10)
        assert not result.exhaustive
        assert not result.deadlock  # verdict withheld


@given(net=state_machine_nets())
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_completeness_property(net):
    prefix = unfold(net, max_events=3000)
    if prefix.num_events >= 3000:
        return  # truncated: completeness not claimed
    assert prefix_markings(prefix, limit=50_000) == reachable_markings(
        net, max_states=50_000
    )
