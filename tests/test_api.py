"""Tests for the top-level public API (`repro` package surface)."""

import pytest

import repro
from repro import NetBuilder, parse_net, verify
from repro.models import choice_net, rw


class TestVerify:
    @pytest.mark.parametrize("method", ["gpo", "full", "stubborn", "symbolic"])
    def test_methods_agree(self, method):
        assert verify(choice_net(), method=method).deadlock
        assert not verify(rw(2), method=method).deadlock

    def test_default_is_gpo(self):
        assert verify(choice_net()).analyzer == "gpo"

    def test_kwargs_forwarded(self):
        result = verify(choice_net(), method="gpo", backend="explicit")
        assert result.extras["backend"] == "explicit"

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            verify(choice_net(), method="oracle")


class TestSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        builder = NetBuilder("hello")
        builder.place("p", marked=True)
        builder.place("q")
        builder.transition("t", inputs=["p"], outputs=["q"])
        result = verify(builder.build())
        assert result.deadlock  # q is terminal

    def test_parse_and_verify(self):
        net = parse_net("place a marked\nplace b\ntrans go : a -> b\n")
        assert verify(net, method="full").states == 2


def test_doctests():
    """Run the doctest examples embedded in the public modules."""
    import doctest

    import repro as top
    import repro.analysis.stats
    import repro.gpo.gpn
    import repro.net.parser
    import repro.net.petrinet
    import repro.net.structure

    for module in (
        top,
        repro.net.petrinet,
        repro.net.parser,
        repro.net.structure,
        repro.analysis.stats,
        repro.gpo.gpn,
    ):
        failures, _ = doctest.testmod(module, verbose=False)
        assert failures == 0, module.__name__
