"""Tests for the figure-series harness: the paper's formulas, literally."""

from repro.harness import (
    figure1_series,
    figure2_series,
    figure3_walkthrough,
    format_series,
)


class TestFigure1:
    def test_formulas(self):
        for row in figure1_series(sizes=(1, 2, 3, 4, 5)):
            assert row.full_states == 2**row.n
            assert row.reduced_states == row.n + 1
            assert row.gpo_states == 2


class TestFigure2:
    def test_formulas(self):
        # The §2.3/§3.1 claims: 2^(n+1)-1 for PO, 2 for GPO, 3^n full.
        for row in figure2_series(sizes=(1, 2, 3, 4, 5, 6)):
            assert row.full_states == 3**row.n
            assert row.reduced_states == 2 ** (row.n + 1) - 1
            assert row.gpo_states == 2


class TestFigure3:
    def test_walkthrough_passes_assertions(self):
        transcript = figure3_walkthrough()
        assert "fire {A,B}" in transcript
        assert "D blocked" in transcript

    def test_walkthrough_bdd_backend(self):
        assert "state 2" in figure3_walkthrough(backend="bdd")


def test_format_series():
    text = format_series(figure1_series(sizes=(1, 2)), title="demo")
    assert "demo" in text
    assert "PO-reduced" in text
