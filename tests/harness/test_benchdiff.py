"""bench-diff: row matching, thresholds, the noise floor, shape errors."""

import json

import pytest

from repro.harness.benchdiff import (
    BenchDiffError,
    diff_bench,
    diff_files,
    format_diff,
    load_bench,
)


def kernel_payload(rate: float, seconds: float = 1.0) -> dict:
    return {
        "benchmark": "marking-kernel",
        "rows": [
            {
                "problem": "NSDP",
                "size": 8,
                "analyzer": "full",
                "kernel_states_per_second": rate,
                "kernel_seconds": seconds,
            }
        ],
    }


def serve_payload(rps: float, p99: float) -> dict:
    return {
        "benchmark": "serve-loadtest",
        "phases": [
            {
                "phase": "cold",
                "throughput_rps": rps,
                "wall_seconds": 2.0,
                "latency_seconds": {"p99": p99},
            }
        ],
    }


class TestKernelDiff:
    def test_identical_is_clean(self):
        diff = diff_bench(kernel_payload(1000.0), kernel_payload(1000.0))
        assert diff.exit_code == 0
        assert not diff.regressions
        assert diff.rows[0].worse_pct == 0.0

    def test_regression_beyond_threshold_fails(self):
        diff = diff_bench(kernel_payload(1000.0), kernel_payload(700.0))
        assert diff.rows[0].worse_pct == 30.0
        assert diff.exit_code == 1

    def test_improvement_never_fails(self):
        diff = diff_bench(kernel_payload(1000.0), kernel_payload(2000.0))
        assert diff.rows[0].worse_pct == -100.0
        assert diff.exit_code == 0

    def test_threshold_is_configurable(self):
        old, new = kernel_payload(1000.0), kernel_payload(900.0)
        assert diff_bench(old, new).exit_code == 0  # 10% < default 25%
        strict = diff_bench(old, new, fail_threshold=5.0)
        assert strict.exit_code == 1


class TestNoiseFloor:
    def test_fast_rows_are_shown_but_not_gated(self):
        old = kernel_payload(1000.0, seconds=0.01)
        new = kernel_payload(100.0, seconds=0.01)
        diff = diff_bench(old, new)
        assert diff.exit_code == 0
        row = diff.rows[0]
        assert not row.gated
        assert row.skip_reason is not None
        assert "noise floor" in row.skip_reason

    def test_min_seconds_zero_restores_strict_mode(self):
        old = kernel_payload(1000.0, seconds=0.01)
        new = kernel_payload(100.0, seconds=0.01)
        diff = diff_bench(old, new, min_seconds=0.0)
        assert diff.exit_code == 1

    def test_either_side_below_floor_skips(self):
        old = kernel_payload(1000.0, seconds=5.0)
        new = kernel_payload(100.0, seconds=0.01)
        assert diff_bench(old, new).exit_code == 0


class TestServeDiff:
    def test_latency_direction_is_inverted(self):
        # Higher p99 is worse even though higher throughput is better.
        diff = diff_bench(serve_payload(100.0, 0.010),
                          serve_payload(100.0, 0.020))
        by_metric = {row.metric: row for row in diff.rows}
        assert by_metric["latency_p99_seconds"].worse_pct == 100.0
        assert by_metric["throughput_rps"].worse_pct == 0.0
        assert diff.exit_code == 1

    def test_throughput_drop_fails(self):
        diff = diff_bench(serve_payload(100.0, 0.010),
                          serve_payload(60.0, 0.010))
        assert diff.exit_code == 1


class TestShape:
    def test_kind_mismatch_raises(self):
        with pytest.raises(BenchDiffError, match="kinds differ"):
            diff_bench(kernel_payload(1.0), serve_payload(1.0, 0.01))

    def test_unknown_kind_raises(self):
        with pytest.raises(BenchDiffError, match="unknown benchmark kind"):
            diff_bench({"benchmark": "???"}, {"benchmark": "???"})

    def test_unreadable_file_raises(self, tmp_path):
        with pytest.raises(BenchDiffError, match="cannot read"):
            load_bench(tmp_path / "missing.json")

    def test_non_artifact_json_raises(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(BenchDiffError, match="no 'benchmark' kind"):
            load_bench(path)

    def test_disjoint_rows_is_loud_but_ok(self):
        old = kernel_payload(1000.0)
        new = kernel_payload(1000.0)
        new["rows"][0]["size"] = 4  # quick sizes vs full sizes
        diff = diff_bench(old, new)
        assert diff.exit_code == 0
        assert not diff.rows
        assert diff.only_old and diff.only_new
        assert "NO COMPARABLE ROWS" in format_diff(diff)


class TestFiles:
    def test_diff_files_roundtrip(self, tmp_path):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        old.write_text(json.dumps(kernel_payload(1000.0)))
        new.write_text(json.dumps(kernel_payload(700.0)))
        diff = diff_files(old, new)
        assert diff.exit_code == 1
        report = format_diff(diff, json.loads(old.read_text()),
                             json.loads(new.read_text()))
        assert "FAIL" in report
        assert "unstamped" in report  # synthetic payloads have no meta
