"""Tests for the ASCII table renderer."""

from repro.harness import format_number, format_table


class TestFormatNumber:
    def test_ints(self):
        assert format_number(42) == "42"
        assert format_number(999_999) == "999999"

    def test_large_ints_scientific(self):
        assert format_number(1_860_000) == "1.86e6"

    def test_floats(self):
        assert format_number(0.056) == "0.06"
        assert format_number(1.5, digits=1) == "1.5"

    def test_none(self):
        assert format_number(None) == "-"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"], [["a", "1"], ["long-name", "22"]]
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        # all lines equally wide
        assert len({len(line) for line in lines}) == 1

    def test_title(self):
        text = format_table(["x"], [["1"]], title="My Table")
        assert text.startswith("My Table\n")

    def test_numbers_right_aligned(self):
        text = format_table(["col"], [["5"], ["500"]])
        lines = text.splitlines()
        assert lines[-2].endswith("  5")
        assert lines[-1].endswith("500")
