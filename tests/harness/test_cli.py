"""Tests for the ``gpo`` command-line interface."""

import re

import pytest

from repro.harness.cli import main
from repro.models import choice_net, figure3_net
from repro.net import save_net, save_pnml
from repro.obs import names


@pytest.fixture
def net_file(tmp_path):
    path = str(tmp_path / "choice.net")
    save_net(choice_net(), path)
    return path


@pytest.fixture
def pnml_file(tmp_path):
    path = str(tmp_path / "fig3.pnml")
    save_pnml(figure3_net(), path)
    return path


class TestVerify:
    def test_deadlock_exit_code(self, net_file, capsys):
        assert main(["verify", net_file]) == 1
        out = capsys.readouterr().out
        assert "DEADLOCK" in out
        assert "deadlock at" in out

    @pytest.mark.parametrize("method", ["full", "stubborn", "symbolic", "gpo"])
    def test_all_methods(self, net_file, method, capsys):
        assert main(["verify", net_file, "--method", method]) == 1
        assert method in capsys.readouterr().out

    def test_pnml_autodetected(self, pnml_file, capsys):
        assert main(["verify", pnml_file]) == 1

    def test_explicit_backend(self, net_file, capsys):
        assert main(["verify", net_file, "--backend", "explicit"]) == 1
        assert "backend=explicit" in capsys.readouterr().out

    def test_unfolding_method(self, net_file, capsys):
        assert main(["verify", net_file, "--method", "unfolding"]) == 1
        assert "cutoffs" in capsys.readouterr().out

    def test_timed_verify(self, tmp_path, capsys):
        path = str(tmp_path / "race.net")
        with open(path, "w") as handle:
            handle.write(
                "place p marked\nplace q\nplace r\n"
                "trans good : p -> q @ [0,1]\n"
                "trans back : q -> p\n"
                "trans bad : p -> r @ [5,6]\n"
            )
        code = main(["verify", path, "--timed"])
        assert code == 0  # 'bad' is preempted; the net cycles forever
        assert "timed" in capsys.readouterr().out
        # untimed skeleton reaches the dead place r
        assert main(["verify", path]) == 1


class TestSafety:
    @pytest.fixture
    def rw_file(self, tmp_path):
        from repro.models import rw

        path = str(tmp_path / "rw3.net")
        save_net(rw(3), path)
        return path

    def test_safe_property(self, rw_file, capsys):
        code = main(
            ["safety", rw_file, "--bad", "writing0 & writing1"]
        )
        assert code == 0
        assert "safe" in capsys.readouterr().out

    def test_unsafe_property_exit_code(self, rw_file, capsys):
        code = main(["safety", rw_file, "--bad", "reading0 & reading1"])
        assert code == 1
        assert "UNSAFE" in capsys.readouterr().out

    def test_negated_places(self, rw_file, capsys):
        code = main(
            ["safety", rw_file, "--bad", "writing0 & !controller"]
        )
        assert code == 0  # controller is always marked

    def test_unknown_place_rejected(self, rw_file, capsys):
        assert main(["safety", rw_file, "--bad", "ghost"]) == 2

    def test_empty_conjunct_rejected(self, rw_file, capsys):
        assert main(["safety", rw_file, "--bad", "a & & b"]) == 2

    def test_no_screen_mode(self, rw_file, capsys):
        code = main(
            [
                "safety",
                rw_file,
                "--no-screen",
                "--bad",
                "reading0 & reading1",
            ]
        )
        assert code == 1


class TestTable1:
    def test_selected_problem(self, capsys):
        code = main(
            ["table1", "--problems", "OVER", "--max-states", "2000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "OVER(2)" in out and "OVER(5)" in out

    def test_unknown_problem(self, capsys):
        assert main(["table1", "--problems", "NOPE"]) == 2


class TestFigures:
    def test_figure2(self, capsys):
        assert main(["figures", "--figure", "2"]) == 0
        assert "conflict pairs" in capsys.readouterr().out

    def test_figure3(self, capsys):
        assert main(["figures", "--figure", "3"]) == 0
        assert "fire {A,B}" in capsys.readouterr().out


class TestCheckAndDot:
    def test_check_ok(self, net_file, capsys):
        assert main(["check", net_file]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "1-safe" in out

    def test_check_unsafe(self, tmp_path, capsys):
        path = str(tmp_path / "unsafe.net")
        with open(path, "w") as handle:
            handle.write(
                "place p marked\nplace q marked\ntrans t : p -> q\n"
            )
        assert main(["check", path]) == 1
        assert "VIOLATION" in capsys.readouterr().out

    def test_check_no_kernel_agrees(self, tmp_path, capsys):
        """The reference-path flag reports the same verdicts."""
        path = str(tmp_path / "unsafe.net")
        with open(path, "w") as handle:
            handle.write(
                "place p marked\nplace q marked\ntrans t : p -> q\n"
            )
        assert main(["check", path, "--no-kernel"]) == 1
        reference_out = capsys.readouterr().out
        assert main(["check", path]) == 1
        assert capsys.readouterr().out == reference_out

    def test_dot_net(self, net_file, capsys):
        assert main(["dot", net_file]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_dot_rg(self, net_file, capsys):
        assert main(["dot", net_file, "--rg"]) == 0
        assert "doublecircle" in capsys.readouterr().out


class TestLint:
    @pytest.fixture
    def broken_file(self, tmp_path):
        # 'dead' is an unmarked source place, so 'stuck' can never fire.
        path = str(tmp_path / "broken.net")
        with open(path, "w") as handle:
            handle.write(
                "place p marked\nplace dead\n"
                "trans t : p -> p\ntrans stuck : dead -> p\n"
            )
        return path

    def test_clean_net_exits_zero(self, net_file, capsys):
        assert main(["lint", net_file]) == 0
        out = capsys.readouterr().out
        assert "verdict: ok" in out
        assert "structurally 1-safe" in out

    def test_broken_net_exits_one(self, broken_file, capsys):
        assert main(["lint", broken_file]) == 1
        assert "verdict: BROKEN" in capsys.readouterr().out

    def test_json_output_is_parseable(self, net_file, capsys):
        import json

        assert main(["lint", net_file, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["broken"] is False
        assert report["safety"]["certified"] is True
        assert report["net_class"] == "state-machine"

    def test_bench_model_lint_prepass(self, capsys):
        assert main(["bench-model", "RW", "2", "--lint", "--no-cache"]) == 0
        captured = capsys.readouterr()
        assert "[lint] rw_2: ok" in captured.err
        assert "RW(2)" in captured.out


class TestBenchModel:
    def test_runs(self, capsys):
        assert main(["bench-model", "RW", "2"]) == 0
        assert "RW(2)" in capsys.readouterr().out

    def test_unknown_model(self, capsys):
        assert main(["bench-model", "XX", "2"]) == 2


class TestBenchKernel:
    def test_quick_writes_valid_json(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH_kernel.json"
        code = main(
            ["bench-kernel", "--quick", "--problems", "OVER,ASAT",
             "--out", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "MISMATCH" not in out
        payload = json.loads(out_path.read_text())
        assert payload["benchmark"] == "marking-kernel"
        rows = payload["rows"]
        assert {row["analyzer"] for row in rows} == {"full", "stubborn"}
        assert all(row["counts_match"] for row in rows)
        assert all(row["kernel_states_per_second"] > 0 for row in rows)

    def test_unknown_problem(self, capsys):
        assert main(["bench-kernel", "--quick", "--problems", "XX"]) == 2


class TestRace:
    def test_deadlock_net_exits_one(self, net_file, capsys):
        code = main(["race", net_file, "--jobs", "1", "--no-cache"])
        assert code == 1
        out = capsys.readouterr().out
        assert "DEADLOCK" in out

    def test_deadlock_free_net_exits_zero(self, tmp_path, capsys):
        from repro.models import rw

        path = str(tmp_path / "rw.net")
        save_net(rw(2), path)
        code = main(["race", path, "--jobs", "1", "--no-cache"])
        assert code == 0
        assert "deadlock-free" in capsys.readouterr().out

    def test_inconclusive_exits_two(self, tmp_path, capsys):
        from repro.models import nsdp

        path = str(tmp_path / "nsdp.net")
        save_net(nsdp(6), path)
        code = main(
            [
                "race",
                path,
                "--jobs",
                "1",
                "--no-cache",
                "--methods",
                "stubborn",
                "--max-states",
                "5",
            ]
        )
        assert code == 2
        assert "INCONCLUSIVE" in capsys.readouterr().out

    def test_unknown_method_rejected(self, net_file, capsys):
        assert main(["race", net_file, "--methods", "quantum"]) == 2

    def test_cache_warm_rerun(self, net_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["race", net_file, "--jobs", "1", "--cache-dir", cache_dir]
        assert main(args) == 1
        assert main(args) == 1
        assert "cache" in capsys.readouterr().out


class TestTable1Engine:
    @staticmethod
    def _state_columns(out):
        """Row shapes minus the timing columns, which naturally vary."""
        rows = {}
        for line in out.splitlines():
            match = re.match(r"\s*(RW\(\d+\))\s", line)
            if match:
                cells = line.split()
                rows[match.group(1)] = [
                    c for c in cells[1:] if "." not in c
                ]
        return rows

    def test_jobs_flag_matches_sequential_output(self, capsys):
        seq = main(
            ["table1", "--problems", "RW", "--max-states", "2000",
             "--no-cache"]
        )
        seq_out = capsys.readouterr().out
        par = main(
            ["table1", "--problems", "RW", "--max-states", "2000",
             "--no-cache", "--jobs", "4"]
        )
        par_out = capsys.readouterr().out
        assert seq == par == 0
        seq_rows = self._state_columns(seq_out)
        assert seq_rows  # the table printed at least one RW row
        assert seq_rows == self._state_columns(par_out)

    def test_portfolio_mode(self, capsys):
        code = main(
            ["table1", "--problems", "RW", "--max-states", "2000",
             "--no-cache", "--portfolio", "--jobs", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "race on rw_6" in out
        assert "deadlock-free" in out


class TestProfile:
    def test_span_tree_and_artifacts(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.json")
        metrics = str(tmp_path / "metrics.prom")
        code = main(
            [
                "profile",
                "nsdp",
                "4",
                "--analyzer",
                "gpo",
                "--trace-out",
                trace,
                "--metrics-out",
                metrics,
            ]
        )
        assert code in (0, 1)
        out = capsys.readouterr().out
        assert "analyze" in out
        assert "hot spans" in out
        assert "metrics:" in out
        import json as _json

        with open(trace, encoding="utf-8") as handle:
            payload = _json.load(handle)
        assert payload["traceEvents"]
        with open(metrics, encoding="utf-8") as handle:
            text = handle.read()
        assert "# TYPE states_expanded counter" in text

    def test_family_is_case_insensitive(self, capsys):
        assert main(["profile", "NSDP", "2"]) in (0, 1)

    def test_timed_analyzer_uses_untimed_skeleton(self, capsys):
        code = main(["profile", "nsdp", "2", "--analyzer", "timed"])
        assert code in (0, 1)
        assert "timed" in capsys.readouterr().out

    def test_unknown_family_exits_two(self, capsys):
        assert main(["profile", "nope", "2"]) == 2

    def test_memory_flag_attributes_kb(self, capsys):
        code = main(["profile", "nsdp", "2", "--memory"])
        assert code in (0, 1)


class TestObsFlags:
    def test_check_trace_and_metrics(self, net_file, tmp_path, capsys):
        trace = str(tmp_path / "t.json")
        metrics = str(tmp_path / "m.prom")
        code = main(
            ["check", net_file, "--trace", trace, "--metrics", metrics]
        )
        assert code in (0, 1, 2)
        import json as _json

        with open(trace, encoding="utf-8") as handle:
            payload = _json.load(handle)
        # check always traces its structural phases, so the trace is
        # never empty even on the certificate fast path.
        spans = {e["name"] for e in payload["traceEvents"]}
        assert names.SPAN_DIAGNOSE in spans
        assert names.SPAN_CERTIFICATE in spans

    def test_table1_trace_flag(self, tmp_path, capsys):
        trace = str(tmp_path / "t.json")
        code = main(
            [
                "table1",
                "--problems",
                "NSDP",
                "--max-states",
                "2000",
                "--no-cache",
                "--jobs",
                "1",
                "--trace",
                trace,
            ]
        )
        assert code == 0
        import json as _json

        with open(trace, encoding="utf-8") as handle:
            payload = _json.load(handle)
        assert isinstance(payload["traceEvents"], list)


class TestQuery:
    """``gpo query`` and the --property flags thread one language through."""

    @pytest.fixture
    def nsdp_file(self, tmp_path):
        from repro.models import nsdp

        path = str(tmp_path / "nsdp3.net")
        save_net(nsdp(3), path)
        return path

    def test_deadlock_holds(self, nsdp_file, capsys):
        # query speaks the property convention: 0 == "the property holds",
        # even when the property is the deadlock question itself.
        assert main(["query", nsdp_file, "deadlock"]) == 0
        assert "property: deadlock" in capsys.readouterr().out

    def test_negated_deadlock_is_violated(self, nsdp_file, capsys):
        assert main(["query", nsdp_file, "!deadlock"]) == 1

    def test_mutex_reachability_refuted(self, nsdp_file, capsys):
        assert main(["query", nsdp_file, "reachable(eat0 & eat1)"]) == 1
        assert "property: reachable(eat0 & eat1)" in capsys.readouterr().out

    def test_mutex_invariant_holds(self, nsdp_file, capsys):
        assert main(["query", nsdp_file, "invariant(!(eat0 & eat1))"]) == 0

    def test_safe_sugar(self, nsdp_file, capsys):
        assert main(["query", nsdp_file, "safe"]) == 0

    def test_parse_error_exits_two(self, nsdp_file, capsys):
        assert main(["query", nsdp_file, "reachable("]) == 2
        assert capsys.readouterr().err

    def test_unknown_place_exits_two(self, nsdp_file, capsys):
        assert main(["query", nsdp_file, "reachable(nope)"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_bad_method_exits_two(self, nsdp_file, capsys):
        assert main(
            ["query", nsdp_file, "deadlock", "--methods", "psychic"]
        ) == 2

    def test_verify_property_flag(self, nsdp_file, capsys):
        # gpo (the default) only screens reachability; full decides it.
        code = main(
            [
                "verify",
                nsdp_file,
                "--method",
                "full",
                "--property",
                "reachable(eat0)",
            ]
        )
        assert code == 0  # reachable(eat0) holds -> exit 0
        assert "property" in capsys.readouterr().out

    def test_verify_property_gpo_screen_is_undecided(self, nsdp_file):
        # A clean GPO screen is inconclusive, not a verdict.
        code = main(
            ["verify", nsdp_file, "--property", "reachable(eat0)"]
        )
        assert code == 2

    def test_verify_property_incompatible_method(self, nsdp_file, capsys):
        code = main(
            [
                "verify",
                nsdp_file,
                "--method",
                "stubborn",
                "--property",
                "reachable(eat0)",
            ]
        )
        assert code == 2
        assert "deadlock" in capsys.readouterr().err

    def test_race_property_flag(self, nsdp_file, capsys):
        code = main(
            [
                "race",
                nsdp_file,
                "--property",
                "reachable(eat0)",
                "--methods",
                "full,symbolic",
            ]
        )
        assert code == 0

    def test_reach_stubborn_refuses(self, nsdp_file, capsys):
        code = main(
            [
                "reach",
                nsdp_file,
                "--target",
                "eat0",
                "--method",
                "stubborn",
            ]
        )
        assert code == 2
        assert "deadlocks only" in capsys.readouterr().err
