"""Tests for the Table 1 harness (small instances only — the full table is
exercised by the benchmark suite)."""

from repro.harness import (
    DEFAULT_SIZES,
    PAPER_TABLE1,
    PROBLEMS,
    Budget,
    format_table1,
    run_instance,
    run_table1,
)


class TestStaticData:
    def test_problems_cover_paper(self):
        assert set(PROBLEMS) == {"NSDP", "ASAT", "OVER", "RW"}

    def test_paper_rows_cover_all_instances(self):
        for problem, sizes in DEFAULT_SIZES.items():
            for size in sizes:
                assert (problem, size) in PAPER_TABLE1

    def test_paper_constants_sane(self):
        full, spin, _, smv, _, gpo, _ = PAPER_TABLE1[("NSDP", 2)]
        assert (full, spin, smv, gpo) == (18, 12, 1068, 3)


class TestRunInstance:
    def test_nsdp2_row(self):
        row = run_instance("NSDP", 2)
        assert row.deadlock
        assert row.full_states == 17
        assert row.gpo_states == 2
        assert row.spin_states is not None and row.spin_states <= 17
        assert row.smv_peak is not None and row.smv_peak > 0

    def test_rw_reduction_degenerate(self):
        row = run_instance("RW", 2)
        assert row.spin_states == row.full_states
        assert not row.deadlock

    def test_budget_marks_missing(self):
        row = run_instance(
            "NSDP", 4, budget=Budget(max_states=5, max_seconds=None)
        )
        assert row.full_states is None
        assert row.spin_states is None

    def test_analyzer_selection(self):
        row = run_instance("OVER", 2, analyzers=("gpo",))
        assert row.full_states is None
        assert row.gpo_states == 2


class TestFormatting:
    def test_table_renders_both_sections(self):
        rows = run_table1(
            problems=["OVER"],
            sizes={"OVER": [2]},
            analyzers=("gpo", "full"),
        )
        text = format_table1(rows)
        assert "OVER(2)" in text
        assert "measured" in text
        assert "paper" in text
        # paper row for OVER(2): full=65
        assert "65" in text

    def test_without_paper_section(self):
        rows = run_table1(
            problems=["OVER"], sizes={"OVER": [2]}, analyzers=("gpo",)
        )
        text = format_table1(rows, with_paper=False)
        assert "paper" not in text


class TestParallelExecution:
    """--jobs N must reproduce --jobs 1 rows exactly (modulo wall time)."""

    @staticmethod
    def _shape(row):
        return (
            row.problem,
            row.size,
            row.full_states,
            row.spin_states,
            row.smv_peak,
            row.gpo_states,
            row.deadlock,
        )

    def test_jobs4_matches_sequential(self):
        kwargs = dict(
            problems=["NSDP"],
            sizes={"NSDP": [2, 4]},
            budget=Budget(max_states=2000, max_seconds=60.0),
        )
        sequential = run_table1(**kwargs)
        parallel = run_table1(**kwargs, jobs=4)
        assert [self._shape(r) for r in sequential] == [
            self._shape(r) for r in parallel
        ]

    def test_cache_round_trip_preserves_rows(self, tmp_path):
        from repro.engine.cache import ResultCache
        from repro.engine.events import MemoryEventSink

        cache = ResultCache(tmp_path)
        sink = MemoryEventSink()
        kwargs = dict(
            problems=["RW"],
            sizes={"RW": [2]},
            budget=Budget(max_states=2000, max_seconds=60.0),
        )
        cold = run_table1(**kwargs, jobs=2, cache=cache)
        warm = run_table1(**kwargs, jobs=2, cache=cache, events=sink)
        assert [self._shape(r) for r in cold] == [
            self._shape(r) for r in warm
        ]
        assert sink.kinds().count("cache_hit") == 4  # one per analyzer
        assert sink.kinds().count("started") == 0  # nothing recomputed
