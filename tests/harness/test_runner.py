"""Tests for the budgeted analyzer runner."""

import pytest

from repro.harness import Budget, run_analyzer
from repro.models import choice_net, nsdp


class TestRunAnalyzer:
    @pytest.mark.parametrize("name", ["full", "stubborn", "symbolic", "gpo"])
    def test_all_analyzers_agree_on_choice(self, name):
        result = run_analyzer(name, choice_net())
        assert result.deadlock
        assert result.exhaustive
        assert result.analyzer == name

    def test_unknown_analyzer_rejected(self):
        with pytest.raises(ValueError):
            run_analyzer("quantum", choice_net())

    def test_state_budget_overrun_reported(self):
        result = run_analyzer(
            "full", nsdp(4), Budget(max_states=10, max_seconds=None)
        )
        assert not result.exhaustive
        assert "aborted" in result.extras
        assert result.states == 10

    def test_time_budget_overrun_reported(self):
        result = run_analyzer(
            "symbolic", nsdp(5), Budget(max_seconds=0.0)
        )
        assert not result.exhaustive
        assert "aborted" in result.extras

    def test_extra_kwargs_forwarded(self):
        result = run_analyzer(
            "gpo", choice_net(), Budget(extra={"backend": "explicit"})
        )
        assert result.extras["backend"] == "explicit"

    def test_unlimited_budget(self):
        result = run_analyzer(
            "full", choice_net(), Budget(max_states=None, max_seconds=None)
        )
        assert result.exhaustive


class TestCooperativeTimeBudgets:
    """max_seconds now binds the explicit explorers, not just symbolic."""

    @pytest.mark.parametrize(
        "name", ["full", "stubborn", "gpo", "unfolding"]
    )
    def test_zero_time_budget_aborts_explicit_engines(self, name):
        result = run_analyzer(
            name, nsdp(4), Budget(max_states=None, max_seconds=0.0)
        )
        assert not result.exhaustive
        assert "aborted" in result.extras

    def test_overrun_reports_actual_states(self):
        result = run_analyzer(
            "stubborn", nsdp(4), Budget(max_states=10, max_seconds=None)
        )
        assert not result.exhaustive
        assert result.states == 10  # real progress: stops exactly at budget


class TestIsolatedRunner:
    def test_same_verdict_as_in_process(self):
        from repro.harness import run_analyzer_isolated

        inproc = run_analyzer("gpo", choice_net())
        isolated = run_analyzer_isolated("gpo", choice_net())
        assert isolated.deadlock == inproc.deadlock
        assert isolated.states == inproc.states
        assert isolated.exhaustive == inproc.exhaustive

    def test_unknown_analyzer_rejected(self):
        from repro.harness import run_analyzer_isolated

        with pytest.raises(ValueError):
            run_analyzer_isolated("quantum", choice_net())
