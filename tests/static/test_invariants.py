"""Tests for the exact Farkas invariant computation."""

from fractions import Fraction
from math import gcd

from repro.models import asat, nsdp, over, rw
from repro.net import NetBuilder
from repro.static import farkas, incidence, p_invariants, t_invariants


def ring2():
    """p0 -t-> p1 -u-> p0: one conserved token."""
    builder = NetBuilder("ring2")
    builder.place("p0", marked=True)
    builder.place("p1")
    builder.transition("t", inputs=["p0"], outputs=["p1"])
    builder.transition("u", inputs=["p1"], outputs=["p0"])
    return builder.build()


def two_rings():
    """Two independent rings: the basis must keep the supports apart."""
    builder = NetBuilder("two_rings")
    for c in ("a", "b"):
        builder.place(f"{c}0", marked=True)
        builder.place(f"{c}1")
        builder.transition(f"{c}_go", inputs=[f"{c}0"], outputs=[f"{c}1"])
        builder.transition(f"{c}_back", inputs=[f"{c}1"], outputs=[f"{c}0"])
    return builder.build()


class TestFarkas:
    def test_single_constraint(self):
        rays, capped = farkas([[1, -1]])
        assert not capped
        assert rays == [(Fraction(1), Fraction(1))]

    def test_empty_system(self):
        assert farkas([]) == ([], False)

    def test_no_nonnegative_solution(self):
        # y1 + y2 = 0 has no non-zero non-negative solution.
        rays, capped = farkas([[1, 1]])
        assert rays == []
        assert not capped

    def test_rays_are_integral_with_gcd_one(self):
        mat = incidence(nsdp(3))
        constraints = [list(mat.effect[t]) for t in range(mat.num_transitions)]
        rays, capped = farkas(constraints)
        assert not capped
        assert rays
        for ray in rays:
            ints = [int(w) for w in ray]
            assert all(Fraction(i) == w for i, w in zip(ints, ray))
            assert all(i >= 0 for i in ints)
            g = 0
            for i in ints:
                g = gcd(g, i)
            assert g == 1

    def test_row_cap_flags_capped(self):
        mat = incidence(asat(2))
        constraints = [list(mat.effect[t]) for t in range(mat.num_transitions)]
        rays, capped = farkas(constraints, max_rows=2)
        assert capped
        # Whatever survived the cap is still a genuine solution.
        for ray in rays:
            for row in constraints:
                assert sum(w * c for w, c in zip(ray, row)) == 0


class TestPInvariants:
    def test_ring_has_the_token_invariant(self):
        basis = p_invariants(ring2())
        assert basis.kind == "P"
        assert len(basis) == 1
        assert basis.invariants[0].weights == (Fraction(1), Fraction(1))

    def test_minimal_support_keeps_rings_apart(self):
        basis = p_invariants(two_rings())
        supports = {inv.support for inv in basis.invariants}
        assert supports == {frozenset({0, 1}), frozenset({2, 3})}

    def test_every_invariant_annihilates_the_incidence_matrix(self):
        for net in (nsdp(2), asat(2), over(2), rw(6)):
            mat = incidence(net)
            basis = p_invariants(net, matrix=mat)
            assert not basis.capped
            assert basis.invariants
            for inv in basis.invariants:
                for t in range(mat.num_transitions):
                    total = sum(
                        inv.weights[p] * mat.effect[t][p]
                        for p in range(mat.num_places)
                    )
                    assert total == 0

    def test_value_is_the_weighted_token_count(self):
        net = ring2()
        inv = p_invariants(net).invariants[0]
        assert inv.value(net.initial_marking) == 1
        assert inv.value(frozenset()) == 0
        assert inv.value(frozenset({0, 1})) == 2

    def test_covering_lists_by_support(self):
        basis = p_invariants(two_rings())
        assert len(basis.covering(0)) == 1
        assert 0 in basis.covering(0)[0].support

    def test_describe_renders_weights(self):
        net = ring2()
        inv = p_invariants(net).invariants[0]
        assert inv.describe(net.places) == "p0 + p1"


class TestTInvariants:
    def test_ring_reproduces_in_one_lap(self):
        basis = t_invariants(ring2())
        assert basis.kind == "T"
        assert len(basis) == 1
        assert basis.invariants[0].weights == (Fraction(1), Fraction(1))

    def test_every_invariant_has_zero_net_effect(self):
        for net in (nsdp(2), asat(2), over(2), rw(6)):
            mat = incidence(net)
            basis = t_invariants(net, matrix=mat)
            assert not basis.capped
            for inv in basis.invariants:
                for p in range(mat.num_places):
                    total = sum(
                        inv.weights[t] * mat.effect[t][p]
                        for t in range(mat.num_transitions)
                    )
                    assert total == 0

    def test_acyclic_net_has_no_t_invariants(self):
        builder = NetBuilder("acyclic")
        builder.place("a", marked=True)
        builder.place("b")
        builder.transition("t", inputs=["a"], outputs=["b"])
        basis = t_invariants(builder.build())
        assert len(basis) == 0
