"""Tests for the structural net-class hierarchy and the MCS cross-check."""

from repro.models import asat, nsdp, over, rw
from repro.net import NetBuilder
from repro.static import classification_chain, classify, mcs_consistency


def build(spec, marked=("p",)):
    """Tiny net DSL: spec maps transition -> (inputs, outputs)."""
    builder = NetBuilder("t")
    places = sorted(
        {p for ins, outs in spec.values() for p in (*ins, *outs)}
    )
    for p in places:
        builder.place(p, marked=p in marked)
    for t, (ins, outs) in spec.items():
        builder.transition(t, inputs=ins, outputs=outs)
    return builder.build()


class TestClassify:
    def test_state_machine(self):
        net = build({"a": (["p"], ["q"]), "b": (["q"], ["p"])})
        assert classify(net) == "state-machine"

    def test_marked_graph(self):
        # Fork/join: every place has one producer and one consumer, but
        # the fork transition has two outputs.
        net = build(
            {"fork": (["p"], ["x", "y"]), "join": (["x", "y"], ["p"])}
        )
        assert classify(net) == "marked-graph"

    def test_free_choice(self):
        # A choice at p, but one branch forks: not a state machine.
        net = build(
            {
                "a": (["p"], ["x", "y"]),
                "b": (["p"], ["z"]),
                "ra": (["x", "y"], ["p"]),
                "rb": (["z"], ["p"]),
            }
        )
        assert classify(net) == "free-choice"

    def test_extended_free_choice(self):
        # Both transitions share the full preset {p, q}: EFC but the
        # choice is not free (two places gate it).
        net = build(
            {
                "a": (["p", "q"], ["p", "r"]),
                "b": (["p", "q"], ["q", "r"]),
                "back": (["r"], ["q"]),
            },
            marked=("p", "q"),
        )
        assert classify(net) == "extended-free-choice"

    def test_asymmetric_choice(self):
        # •a = {p} and •b = {p, q} overlap without being equal, but the
        # consumer sets of p and q are ordered by inclusion.
        net = build(
            {
                "a": (["p"], ["r"]),
                "b": (["p", "q"], ["r"]),
                "back": (["r"], ["p"]),
            },
            marked=("p", "q"),
        )
        assert classify(net) == "asymmetric-choice"

    def test_general(self):
        # Three pairwise-overlapping presets with incomparable consumers.
        net = build(
            {
                "a": (["p", "q"], ["r"]),
                "b": (["q", "s"], ["r"]),
                "c": (["s", "p"], ["r"]),
                "back": (["r"], ["p"]),
            },
            marked=("p", "q", "s"),
        )
        assert classify(net) == "general"

    def test_chain_is_specific_first_and_ends_general(self):
        net = build({"a": (["p"], ["q"]), "b": (["q"], ["p"])})
        chain = classification_chain(net)
        assert chain[0] == "state-machine"
        assert chain[-1] == "general"
        # A state machine is trivially free-choice.
        assert "free-choice" in chain

    def test_benchmark_families(self):
        assert classify(nsdp(2)) == "general"
        assert classify(rw(6)) == "general"
        assert classify(asat(2)) == "asymmetric-choice"
        assert classify(over(2)) == "asymmetric-choice"


class TestMcsConsistency:
    def test_clean_on_benchmarks(self):
        for net in (nsdp(2), asat(2), over(2), rw(6)):
            assert mcs_consistency(net) == []

    def test_clean_on_free_choice(self):
        net = build(
            {
                "a": (["p"], ["x"]),
                "b": (["p"], ["y"]),
                "ra": (["x"], ["p"]),
                "rb": (["y"], ["p"]),
            }
        )
        assert mcs_consistency(net) == []
