"""Tests for the structural 1-safeness certificate."""

import pickle

from repro.models import asat, nsdp, over, rw
from repro.net import NetBuilder
from repro.static import assured_safety, certify_safety, p_invariants


def unsafe_net():
    """p, q both marked; t: p -> q puts a second token on q."""
    builder = NetBuilder("unsafe")
    builder.place("p", marked=True)
    builder.place("q", marked=True)
    builder.transition("t", inputs=["p"], outputs=["q"])
    return builder.build()


class TestCertifySafety:
    def test_benchmarks_are_certified(self):
        for net in (nsdp(2), asat(2), over(2), rw(6)):
            certificate = certify_safety(net)
            assert certificate.certified, certificate.explain(net)
            assert certificate.uncovered == ()
            assert not certificate.basis_capped
            assert all(
                bound is not None and bound <= 1
                for bound in certificate.bounds.values()
            )

    def test_unsafe_net_is_not_certified(self):
        net = unsafe_net()
        certificate = certify_safety(net)
        # y(p) = y(q) with y·m0 = 2: the invariant bound is 2, so no
        # place is covered and the certificate must not exist.
        assert not certificate.certified
        assert set(certificate.uncovered) == {0, 1}
        assert certificate.bounds[0] == 2
        assert "not covered" in certificate.explain(net)

    def test_certified_explain_mentions_coverage(self):
        net = nsdp(2)
        text = certify_safety(net).explain(net)
        assert "structurally 1-safe" in text

    def test_capped_basis_is_flagged(self):
        net = nsdp(2)
        basis = p_invariants(net, max_rows=1)
        assert basis.capped
        certificate = certify_safety(net, basis=basis)
        assert certificate.basis_capped

    def test_bounds_are_structural_floor_values(self):
        # fork: a -> b, c then joiners feed d; the invariant
        # y = (1,1,1,2)/... gives d the bound floor(1/2) = 0.
        builder = NetBuilder("fork")
        builder.place("a", marked=True)
        builder.place("b")
        builder.place("c")
        builder.place("d")
        builder.transition("t", inputs=["a"], outputs=["b"])
        builder.transition("u", inputs=["a"], outputs=["c"])
        builder.transition("v", inputs=["b", "c"], outputs=["d"])
        net = builder.build()
        certificate = certify_safety(net)
        assert certificate.certified
        assert certificate.bounds[net.place_id("d")] == 0  # unreachable


class TestAssuredSafety:
    def test_structural_path_short_circuits(self):
        status, source = assured_safety(nsdp(2))
        assert (status, source) == ("safe", "structural")

    def test_dynamic_fallback_detects_unsafe(self):
        status, source = assured_safety(unsafe_net())
        assert (status, source) == ("unsafe", "dynamic")

    def test_dynamic_fallback_reports_unknown_on_budget(self):
        # Force the structural path to fail with a crippled basis, then
        # give the dynamic check too small a budget to finish.
        net = nsdp(4)
        certificate = certify_safety(net, basis=p_invariants(net, max_rows=1))
        assert not certificate.certified
        status, source = assured_safety(
            net, certificate=certificate, max_states=10
        )
        assert (status, source) == ("unknown", "dynamic")


class TestStaticAnalysisAccessor:
    def test_cached_on_the_net(self):
        net = nsdp(2)
        assert net.static_analysis() is net.static_analysis()

    def test_certificate_available_via_accessor(self):
        net = nsdp(2)
        assert net.static_analysis().safety_certificate.certified

    def test_pickle_drops_the_cache_and_recomputes(self):
        net = nsdp(2)
        net.static_analysis().safety_certificate  # populate the cache
        clone = pickle.loads(pickle.dumps(net))
        assert clone == net
        assert clone._static is None
        assert clone.static_analysis().safety_certificate.certified
