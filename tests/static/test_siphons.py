"""Tests for siphon/trap enumeration and the deadlock-freedom pre-check."""

from repro.models import modem, nsdp, rw
from repro.net import NetBuilder
from repro.static import (
    deadlock_freedom_precheck,
    maximal_trap_within,
    minimal_siphons,
    minimal_traps,
)


def ring2():
    builder = NetBuilder("ring2")
    builder.place("p0", marked=True)
    builder.place("p1")
    builder.transition("t", inputs=["p0"], outputs=["p1"])
    builder.transition("u", inputs=["p1"], outputs=["p0"])
    return builder.build()


def drain_net():
    """a feeds b, b drains: {b} is a siphon but not a trap."""
    builder = NetBuilder("drain")
    builder.place("a", marked=True)
    builder.place("b")
    builder.transition("move", inputs=["a"], outputs=["b"])
    builder.transition("drain", inputs=["b"])
    return builder.build()


class TestEnumeration:
    def test_ring_siphon_is_the_whole_ring(self):
        analysis = minimal_siphons(ring2())
        assert not analysis.capped
        assert analysis.siphons == (frozenset({0, 1}),)

    def test_ring_trap_is_the_whole_ring(self):
        analysis = minimal_traps(ring2())
        assert analysis.siphons == (frozenset({0, 1}),)

    def test_drain_net_siphons(self):
        net = drain_net()
        analysis = minimal_siphons(net)
        # {a} is a siphon (no producers at all); {b} is not ('move'
        # produces into b without consuming from it).
        assert frozenset({net.place_id("a")}) in analysis.siphons
        assert frozenset({net.place_id("b")}) not in analysis.siphons

    def test_drain_net_has_no_marked_trap(self):
        net = drain_net()
        # Everything can drain: the only trap inside {a,b} is empty.
        full = frozenset(range(net.num_places))
        assert maximal_trap_within(net, full) == frozenset()

    def test_every_result_is_a_siphon(self):
        for net in (nsdp(2), rw(6), modem(1, bug=True)):
            analysis = minimal_siphons(net)
            for siphon in analysis.siphons:
                producers = set()
                consumers = set()
                for p in siphon:
                    producers |= net.pre_transitions[p]
                    consumers |= net.post_transitions[p]
                assert producers <= consumers

    def test_every_result_is_a_trap(self):
        for net in (nsdp(2), rw(6)):
            analysis = minimal_traps(net)
            for trap in analysis.siphons:
                producers = set()
                consumers = set()
                for p in trap:
                    producers |= net.pre_transitions[p]
                    consumers |= net.post_transitions[p]
                assert consumers <= producers

    def test_results_are_inclusion_minimal(self):
        for net in (nsdp(2), rw(6)):
            siphons = minimal_siphons(net).siphons
            for a in siphons:
                for b in siphons:
                    assert not (a < b)

    def test_traps_are_siphons_of_the_reversed_net(self):
        net = nsdp(2)
        builder = NetBuilder("reversed")
        for p in range(net.num_places):
            builder.place(net.places[p], marked=p in net.initial_marking)
        for t in range(net.num_transitions):
            builder.transition(
                net.transitions[t],
                inputs=[net.places[p] for p in net.post_places[t]],
                outputs=[net.places[p] for p in net.pre_places[t]],
            )
        reversed_net = builder.build()
        assert set(minimal_traps(net).siphons) == set(
            minimal_siphons(reversed_net).siphons
        )

    def test_count_cap_flags_capped(self):
        analysis = minimal_siphons(nsdp(2), max_count=1)
        assert analysis.capped
        assert len(analysis.siphons) <= 1

    def test_size_cap_flags_capped(self):
        analysis = minimal_siphons(nsdp(2), max_size=1)
        assert analysis.capped


class TestMaximalTrap:
    def test_trap_of_a_ring_is_itself(self):
        net = ring2()
        full = frozenset({0, 1})
        assert maximal_trap_within(net, full) == full

    def test_proper_subset_of_ring_is_no_trap(self):
        net = ring2()
        assert maximal_trap_within(net, frozenset({0})) == frozenset()


class TestDeadlockPrecheck:
    def test_ring_is_deadlock_free(self):
        assert deadlock_freedom_precheck(ring2()) == "deadlock-free"

    def test_rw_is_deadlock_free(self):
        assert deadlock_freedom_precheck(rw(6)) == "deadlock-free"

    def test_nsdp_is_unknown(self):
        # NSDP really deadlocks, so the check must not claim freedom.
        assert deadlock_freedom_precheck(nsdp(2)) == "unknown"

    def test_buggy_modem_is_unknown(self):
        assert deadlock_freedom_precheck(modem(1, bug=True)) == "unknown"

    def test_capped_enumeration_is_unknown(self):
        analysis = minimal_siphons(rw(6), max_count=1)
        assert analysis.capped
        assert deadlock_freedom_precheck(rw(6), analysis) == "unknown"

    def test_no_transitions_is_unknown(self):
        builder = NetBuilder("inert")
        builder.place("p", marked=True)
        # The initial marking itself is dead.
        assert deadlock_freedom_precheck(builder.build()) == "unknown"

    def test_source_transition_is_deadlock_free(self):
        builder = NetBuilder("source")
        builder.place("p")
        builder.transition("gen", outputs=["p"])
        net = builder.build(allow_source_transitions=True)
        assert deadlock_freedom_precheck(net) == "deadlock-free"
