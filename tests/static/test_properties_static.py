"""Property-based tests: invariants really are invariant.

P-invariants: the weighted token count ``y·m`` is conserved along every
firing sequence of a safe net.  T-invariants: a firing sequence whose
Parikh vector equals the invariant returns to the marking it started
from.  Exercised on the safe-by-construction synchronized state machines
of :mod:`repro.models.random_nets`.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.static import p_invariants, t_invariants

from tests.conftest import state_machine_nets

COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(net=state_machine_nets(), seed=st.integers(0, 2**16))
@settings(**COMMON)
def test_p_invariants_conserved_along_random_walks(net, seed):
    basis = p_invariants(net)
    assert basis.invariants  # each component ring conserves its token
    initial = [inv.value(net.initial_marking) for inv in basis.invariants]
    rng = random.Random(seed)
    marking = net.initial_marking
    for _ in range(60):
        enabled = net.enabled_transitions(marking)
        if not enabled:
            break
        marking = net.fire(rng.choice(enabled), marking)
        for inv, expected in zip(basis.invariants, initial):
            assert inv.value(marking) == expected


@given(net=state_machine_nets())
@settings(**COMMON)
def test_every_place_is_covered_on_state_machine_products(net):
    # Products of single-token rings are exactly the invariant-covered
    # case: the certificate must always exist.
    from repro.static import certify_safety

    assert certify_safety(net, basis=p_invariants(net)).certified


def _replay(net, counts, marking, depth):
    """Find a firing sequence using each transition ``counts[t]`` times."""
    if depth == 0:
        return marking if all(c == 0 for c in counts) else None
    for t in net.enabled_transitions(marking):
        if counts[t] == 0:
            continue
        counts[t] -= 1
        result = _replay(net, counts, net.fire(t, marking), depth - 1)
        counts[t] += 1
        if result is not None:
            return result
    return None


@given(net=state_machine_nets())
@settings(**COMMON)
def test_t_invariants_reproduce_the_marking_when_replayable(net):
    # A T-invariant need not be realizable from m0 — the property under
    # test is only that every *replayable* one is marking-preserving.
    basis = t_invariants(net)
    for inv in basis.invariants[:4]:
        counts = [int(inv.weights[t]) for t in range(net.num_transitions)]
        total = sum(counts)
        if total == 0 or total > 12:
            continue  # keep the backtracking search cheap
        final = _replay(net, counts, net.initial_marking, total)
        if final is not None:
            assert final == net.initial_marking
