"""Cross-checks: structural verdicts against exhaustive exploration.

The certificate and the siphon pre-check are sound-but-incomplete; these
tests pin down the direction of that soundness on the actual benchmark
families rather than toy nets.
"""

import json

from repro.analysis.deadlock import has_deadlock
from repro.engine.events import JsonlEventSink
from repro.harness import DEFAULT_SIZES, PROBLEMS, run_table1
from repro.harness.runner import Budget
from repro.models import asat, modem, nsdp, over, rw
from repro.net import check_safe
from repro.static import certify_safety, deadlock_freedom_precheck

SMALLEST = [nsdp(2), asat(2), over(2), rw(6)]


class TestCertificateAgreesWithReachability:
    def test_certified_families_are_exhaustively_safe(self):
        for net in SMALLEST:
            certificate = certify_safety(net)
            verdict = check_safe(net)
            assert verdict.status == "safe"
            # Soundness: a certificate may only exist for safe nets.
            assert certificate.certified

    def test_all_table1_instances_are_certified_structurally(self):
        # The acceptance bar: every Table 1 model is proven 1-safe with
        # zero states explored.
        for problem, sizes in DEFAULT_SIZES.items():
            for size in sizes:
                net = PROBLEMS[problem](size)
                certificate = certify_safety(net)
                assert certificate.certified, (
                    f"{problem}({size}): {certificate.explain(net)}"
                )
                assert not certificate.basis_capped


class TestPrecheckNeverContradictsDeadlockSearch:
    def test_one_directional_soundness(self):
        nets = SMALLEST + [modem(1, bug=True), modem(1, bug=False)]
        for net in nets:
            verdict = deadlock_freedom_precheck(net)
            assert verdict in ("deadlock-free", "unknown")
            if verdict == "deadlock-free":
                assert not has_deadlock(net), net.name


class TestJobEventsCarryCertification:
    def test_jsonl_stats_include_safety_certified(self, tmp_path):
        log = tmp_path / "events.jsonl"
        with open(log, "w", encoding="utf-8") as handle:
            run_table1(
                problems=["NSDP"],
                sizes={"NSDP": [2]},
                budget=Budget(max_states=5000),
                events=JsonlEventSink(handle),
            )
        certified = {}
        for line in log.read_text().splitlines():
            event = json.loads(line)
            if event.get("kind") != "finished":
                continue
            stats = event.get("stats") or {}
            certified[event["method"]] = stats.get("safety_certified")
        assert certified
        assert all(value is True for value in certified.values()), certified
