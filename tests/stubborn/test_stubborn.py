"""Tests for stubborn-set computation (conditions D1/D2/key)."""

from repro.models import choice_net, concurrent_net, conflict_pairs_net, rw
from repro.net import StructuralInfo
from repro.stubborn import stubborn_enabled, stubborn_set


class TestClosure:
    def test_independent_seed_stays_singleton(self):
        net = concurrent_net(4)
        info = StructuralInfo(net)
        closure = stubborn_set(net, info, net.initial_marking, 0)
        assert closure == {0}

    def test_conflicters_pulled_in(self):
        net = choice_net()
        info = StructuralInfo(net)
        closure = stubborn_set(net, info, net.initial_marking, 0)
        assert closure == {0, 1}

    def test_d1_disabled_producers_pulled_in(self):
        # t needs an empty place q; only w produces q.  Seeding with the
        # enabled conflicter of t must pull w into the closure.
        from repro.net import NetBuilder

        builder = NetBuilder()
        builder.place("c", marked=True)
        builder.place("q")
        builder.place("z", marked=True)
        builder.place("x")
        builder.place("y")
        builder.transition("a", inputs=["c"], outputs=["x"])
        builder.transition("b", inputs=["c", "q"], outputs=["y"])
        builder.transition("w", inputs=["z"], outputs=["q"])
        net = builder.build()
        info = StructuralInfo(net)
        closure = stubborn_set(net, info, net.initial_marking, net.transition_id("a"))
        assert closure == {0, 1, 2}  # a, b (disabled), w (producer)

    def test_key_transition_present(self):
        net = conflict_pairs_net(3)
        info = StructuralInfo(net)
        for seed in net.enabled_transitions(net.initial_marking):
            closure = stubborn_set(net, info, net.initial_marking, seed)
            enabled = [
                t for t in closure if net.is_enabled(t, net.initial_marking)
            ]
            assert enabled, "stubborn set must contain an enabled transition"


class TestStubbornEnabled:
    def test_deadlock_returns_empty(self):
        net = choice_net()
        dead = net.marking_from_names(["p1"])
        info = StructuralInfo(net)
        assert stubborn_enabled(net, info, dead) == []

    def test_best_strategy_fires_one_pair(self):
        net = conflict_pairs_net(4)
        info = StructuralInfo(net)
        fired = stubborn_enabled(net, info, net.initial_marking)
        assert len(fired) == 2  # exactly one conflict pair
        a, b = sorted(net.transitions[t] for t in fired)
        assert a[1:] == b[1:]  # same pair index

    def test_first_strategy(self):
        net = conflict_pairs_net(4)
        info = StructuralInfo(net)
        fired = stubborn_enabled(
            net, info, net.initial_marking, strategy="first"
        )
        assert len(fired) == 2

    def test_unknown_strategy_rejected(self):
        import pytest

        net = choice_net()
        info = StructuralInfo(net)
        with pytest.raises(ValueError):
            stubborn_enabled(net, info, net.initial_marking, strategy="bogus")

    def test_rw_degenerates_to_all_enabled(self):
        # The paper's RW observation: no reduction is possible.
        net = rw(3)
        info = StructuralInfo(net)
        fired = stubborn_enabled(net, info, net.initial_marking)
        assert set(fired) == set(
            net.enabled_transitions(net.initial_marking)
        )
