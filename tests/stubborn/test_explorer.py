"""Tests for the reduced explorer and its paper-level claims."""

import pytest

from repro.analysis import ExplorationLimitReached, explore
from repro.models import (
    choice_net,
    concurrent_net,
    conflict_pairs_net,
    nsdp,
    rw,
)
from repro.stubborn import analyze, explore_reduced


class TestFigureClaims:
    def test_figure1_linear(self):
        # §2.3: "from N! factorial interleavings to N linear" — one path.
        for n in (1, 2, 3, 4, 5, 6):
            graph = explore_reduced(concurrent_net(n))
            assert graph.num_states == n + 1

    def test_figure2_binary_tree(self):
        # §2.3 "Problem": the anticipated RG still has 2^(N+1) - 1 states.
        for n in (1, 2, 3, 4, 5):
            graph = explore_reduced(conflict_pairs_net(n))
            assert graph.num_states == 2 ** (n + 1) - 1

    def test_rw_no_reduction(self):
        # §4: for RW the reduced state space equals the complete one.
        for n in (2, 3, 4):
            net = rw(n)
            assert explore_reduced(net).num_states == explore(net).num_states


class TestDeadlockPreservation:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_nsdp_deadlock_preserved(self, n):
        net = nsdp(n)
        full = explore(net)
        reduced = explore_reduced(net)
        assert bool(full.deadlocks) == bool(reduced.deadlocks)
        assert reduced.num_states <= full.num_states
        # every reduced deadlock is a true deadlock
        for marking in reduced.deadlocks:
            assert net.is_deadlocked(marking)

    def test_reduced_states_subset_of_full(self):
        net = nsdp(3)
        full_states = set(explore(net).states())
        for state in explore_reduced(net).states():
            assert state in full_states


class TestAnalyze:
    def test_verdict_and_witness(self):
        result = analyze(choice_net())
        assert result.deadlock
        assert result.analyzer == "stubborn"
        assert result.witness is not None

    def test_live_net(self, loop_net):
        assert not analyze(loop_net).deadlock

    def test_limit(self):
        with pytest.raises(ExplorationLimitReached):
            explore_reduced(nsdp(5), max_states=3)

    def test_stop_at_first_deadlock(self):
        graph = explore_reduced(nsdp(3), stop_at_first_deadlock=True)
        assert len(graph.deadlocks) == 1

    def test_strategy_recorded(self):
        assert analyze(choice_net()).extras["strategy"] == "best"
