"""Property-based tests: stubborn-set reduction preserves deadlocks.

The central theorem of Valmari [14]: the reduced reachability graph
contains a deadlock iff the full one does.  Exercised on random nets and
on safe-by-construction synchronized state machines.
"""

from hypothesis import HealthCheck, given, settings

from repro.analysis import explore
from repro.net.exceptions import UnsafeNetError
from repro.stubborn import explore_reduced

from tests.conftest import safe_nets, state_machine_nets

COMMON = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(net=safe_nets())
@settings(**COMMON)
def test_deadlock_verdict_matches_full_on_random_nets(net):
    try:
        full = explore(net, max_states=3000)
    except (UnsafeNetError, Exception) as exc:
        if isinstance(exc, UnsafeNetError):
            return  # unsafe instance: out of the theory's scope
        raise
    reduced = explore_reduced(net, max_states=5000)
    assert bool(reduced.deadlocks) == bool(full.deadlocks)


@given(net=state_machine_nets())
@settings(**COMMON)
def test_deadlock_verdict_matches_full_on_state_machines(net):
    full = explore(net, max_states=5000)
    reduced = explore_reduced(net, max_states=5000)
    assert bool(reduced.deadlocks) == bool(full.deadlocks)


@given(net=state_machine_nets())
@settings(**COMMON)
def test_reduction_never_grows_the_graph(net):
    full = explore(net, max_states=5000)
    reduced = explore_reduced(net, max_states=5000)
    assert reduced.num_states <= full.num_states
    assert set(reduced.states()) <= set(full.states())


@given(net=state_machine_nets())
@settings(**COMMON)
def test_reduced_deadlocks_are_real(net):
    reduced = explore_reduced(net, max_states=5000)
    for marking in reduced.deadlocks:
        assert net.is_deadlocked(marking)
