"""Tests for the labelled reachability-graph structure."""

from repro.analysis import ReachabilityGraph


class TestBasics:
    def test_initial_state_present(self):
        graph = ReachabilityGraph("s0")
        assert "s0" in graph
        assert graph.num_states == 1
        assert graph.initial == "s0"

    def test_add_state_idempotent(self):
        graph = ReachabilityGraph("s0")
        assert graph.add_state("s1")
        assert not graph.add_state("s1")
        assert graph.num_states == 2

    def test_add_edge_adds_endpoints(self):
        graph = ReachabilityGraph("s0")
        graph.add_edge("s0", "t", "s1")
        assert "s1" in graph
        assert graph.num_edges == 1
        assert graph.successors("s0") == [("t", "s1")]

    def test_parallel_edges_counted(self):
        graph = ReachabilityGraph("s0")
        graph.add_edge("s0", "a", "s1")
        graph.add_edge("s0", "b", "s1")
        assert graph.num_edges == 2

    def test_edges_iteration(self):
        graph = ReachabilityGraph("s0")
        graph.add_edge("s0", "a", "s1")
        graph.add_edge("s1", "b", "s0")
        assert set(graph.edges()) == {("s0", "a", "s1"), ("s1", "b", "s0")}

    def test_len_and_repr(self):
        graph = ReachabilityGraph("s0")
        graph.add_edge("s0", "a", "s1")
        graph.mark_deadlock("s1")
        assert len(graph) == 2
        assert "states=2" in repr(graph)
        assert "deadlocks=1" in repr(graph)

    def test_states_in_discovery_order(self):
        graph = ReachabilityGraph("a")
        graph.add_edge("a", "t", "b")
        graph.add_edge("a", "u", "c")
        assert list(graph.states()) == ["a", "b", "c"]


class TestPaths:
    def build_diamond(self):
        graph = ReachabilityGraph("s0")
        graph.add_edge("s0", "l", "left")
        graph.add_edge("s0", "r", "right")
        graph.add_edge("left", "l2", "goal")
        graph.add_edge("right", "r2", "goal")
        graph.add_edge("goal", "loop", "s0")
        return graph

    def test_path_to_initial_is_empty(self):
        assert self.build_diamond().path_to("s0") == []

    def test_shortest_path(self):
        graph = ReachabilityGraph("s0")
        graph.add_edge("s0", "long1", "mid")
        graph.add_edge("mid", "long2", "goal")
        graph.add_edge("s0", "short", "goal")
        path = graph.path_to("goal")
        assert path == [("short", "goal")]

    def test_path_labels(self):
        path = self.build_diamond().path_to("goal")
        assert path is not None
        assert len(path) == 2
        assert path[-1][1] == "goal"

    def test_unknown_state_returns_none(self):
        assert self.build_diamond().path_to("ghost") is None

    def test_unreachable_state_returns_none(self):
        graph = ReachabilityGraph("s0")
        graph.add_state("island")
        assert graph.path_to("island") is None
