"""Tests for on-the-fly deadlock detection helpers."""

import pytest

from repro.analysis import (
    ExplorationLimitReached,
    all_deadlocks,
    deadlock_witnesses,
    explore,
    find_deadlock,
    has_deadlock,
)
from repro.models import choice_net, concurrent_net, nsdp


class TestFindDeadlock:
    def test_found_with_trace(self):
        witness = find_deadlock(choice_net())
        assert witness is not None
        assert witness.marking in (frozenset({"p1"}), frozenset({"p2"}))
        assert witness.trace in (("a",), ("b",))

    def test_trace_replays(self):
        net = nsdp(3)
        witness = find_deadlock(net)
        assert witness is not None
        marking = net.initial_marking
        for label in witness.trace:
            marking = net.fire_by_name(label, marking)
        assert net.marking_names(marking) == witness.marking
        assert net.is_deadlocked(marking)

    def test_none_for_live_net(self, loop_net):
        assert find_deadlock(loop_net) is None
        assert not has_deadlock(loop_net)

    def test_limit(self):
        with pytest.raises(ExplorationLimitReached):
            find_deadlock(nsdp(4), max_states=5)

    def test_deadlock_at_initial(self):
        from repro.net import NetBuilder

        builder = NetBuilder()
        builder.place("stuck", marked=True)
        builder.place("need")
        builder.place("out")
        builder.transition("t", inputs=["stuck", "need"], outputs=["out"])
        witness = find_deadlock(builder.build())
        assert witness is not None
        assert witness.trace == ()
        assert "at marking" in str(witness)


class TestGraphQueries:
    def test_all_deadlocks_order(self):
        graph = explore(choice_net())
        deadlocks = all_deadlocks(graph)
        assert len(deadlocks) == 2
        assert set(deadlocks) == graph.deadlocks

    def test_witnesses_for_every_deadlock(self):
        net = choice_net()
        graph = explore(net)
        witnesses = deadlock_witnesses(net, graph)
        assert {w.marking for w in witnesses} == {
            frozenset({"p1"}),
            frozenset({"p2"}),
        }

    def test_witness_limit(self):
        net = choice_net()
        graph = explore(net)
        assert len(deadlock_witnesses(net, graph, limit=1)) == 1

    def test_terminal_state_is_deadlock(self):
        graph = explore(concurrent_net(2))
        assert len(all_deadlocks(graph)) == 1
