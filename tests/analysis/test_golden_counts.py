"""Golden state/edge counts on the Table 1 families at small sizes.

These counts were captured from the frozenset reference implementation
before the bitmask marking kernel landed; every analyzer — on either
path — must keep reproducing them exactly.  A drift here means a
semantics change, not a perf change.
"""

import pytest

import repro.analysis.reachability as full
import repro.gpo.analysis as gpo
import repro.stubborn.explorer as stubborn
from repro.models import asat, nsdp, over, rw

#: problem -> (full, stubborn, gpo) golden (states, edges, deadlock).
GOLDEN = {
    ("NSDP", 2): ((17, 28, True), (15, 24, True), (2, 1, True)),
    ("NSDP", 4): ((341, 1160, True), (244, 631, True), (2, 1, True)),
    ("ASAT", 2): ((36, 66, False), (16, 17, False), (10, 10, False)),
    ("OVER", 2): ((16, 20, True), (15, 18, True), (2, 1, True)),
    ("OVER", 3): ((62, 120, True), (41, 61, True), (2, 1, True)),
    ("RW", 6): ((70, 396, False), (70, 396, False), (4, 4, False)),
}

BUILDERS = {"NSDP": nsdp, "ASAT": asat, "OVER": over, "RW": rw}


@pytest.mark.parametrize("problem,size", sorted(GOLDEN))
@pytest.mark.parametrize("use_kernel", [False, True])
def test_full_and_stubborn_counts(problem, size, use_kernel):
    net = BUILDERS[problem](size)
    full_golden, stubborn_golden, _ = GOLDEN[(problem, size)]
    result = full.analyze(net, use_kernel=use_kernel, want_witness=False)
    assert (result.states, result.edges, result.deadlock) == full_golden
    result = stubborn.analyze(net, use_kernel=use_kernel, want_witness=False)
    assert (result.states, result.edges, result.deadlock) == stubborn_golden


@pytest.mark.parametrize("problem,size", sorted(GOLDEN))
def test_gpo_counts(problem, size):
    net = BUILDERS[problem](size)
    _, _, gpo_golden = GOLDEN[(problem, size)]
    result = gpo.analyze(net, want_witness=False)
    assert (result.states, result.edges, result.deadlock) == gpo_golden
