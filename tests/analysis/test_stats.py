"""Tests for result records and the stopwatch."""

from repro.analysis import AnalysisResult, DeadlockWitness, stopwatch


class TestDeadlockWitness:
    def test_str_with_trace(self):
        witness = DeadlockWitness(
            marking=frozenset({"p1", "p2"}), trace=("a", "{b,c}")
        )
        rendered = str(witness)
        assert "{p1, p2}" in rendered
        assert "a ; {b,c}" in rendered

    def test_str_without_trace(self):
        witness = DeadlockWitness(marking=frozenset({"p"}), trace=())
        assert "at marking {p}" in str(witness)
        assert "via" not in str(witness)

    def test_frozen(self):
        witness = DeadlockWitness(marking=frozenset(), trace=())
        try:
            witness.trace = ("x",)  # type: ignore[misc]
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("witness should be immutable")


class TestAnalysisResult:
    def make(self, **kwargs):
        defaults = dict(
            analyzer="full",
            net_name="n",
            states=5,
            edges=7,
            deadlock=False,
            time_seconds=0.25,
        )
        defaults.update(kwargs)
        return AnalysisResult(**defaults)

    def test_verdicts(self):
        assert self.make(deadlock=True).verdict == "DEADLOCK"
        assert self.make().verdict == "deadlock-free"
        assert "bounded" in self.make(exhaustive=False).verdict

    def test_describe_includes_extras(self):
        result = self.make(extras={"peak": 42})
        assert "peak=42" in result.describe()
        assert "states=5" in result.describe()


def test_stopwatch_measures():
    with stopwatch() as elapsed:
        total = sum(range(1000))
    assert total == 499500
    assert elapsed[0] >= 0.0
