"""Tests for full reachability exploration (paper §2.2)."""

import pytest

from repro.analysis import (
    ExplorationLimitReached,
    analyze,
    explore,
    reachable_markings,
)
from repro.models import choice_net, concurrent_net, conflict_pairs_net


class TestExplore:
    def test_figure1_lattice(self):
        # n concurrent transitions: the full RG is the Boolean lattice.
        for n in (1, 2, 3, 4, 5):
            graph = explore(concurrent_net(n))
            assert graph.num_states == 2**n
            assert graph.num_edges == n * 2 ** (n - 1)

    def test_figure2_grid(self):
        # n conflict pairs: 3^n states (each pair: unresolved/A/B).
        for n in (1, 2, 3, 4):
            graph = explore(conflict_pairs_net(n))
            assert graph.num_states == 3**n

    def test_choice(self):
        graph = explore(choice_net())
        assert graph.num_states == 3
        assert len(graph.deadlocks) == 2

    def test_deadlock_recording(self):
        graph = explore(concurrent_net(2))
        # single terminal state
        assert len(graph.deadlocks) == 1

    def test_state_limit(self):
        with pytest.raises(ExplorationLimitReached):
            explore(concurrent_net(6), max_states=10)

    def test_stop_at_first_deadlock(self):
        graph = explore(conflict_pairs_net(3), stop_at_first_deadlock=True)
        assert len(graph.deadlocks) == 1
        assert graph.num_states <= 3**3

    def test_initial_state_first(self, sequence):
        graph = explore(sequence)
        assert next(iter(graph.states())) == sequence.initial_marking


class TestReachableMarkings:
    def test_matches_explore(self):
        net = conflict_pairs_net(3)
        assert reachable_markings(net) == set(explore(net).states())

    def test_limit(self):
        with pytest.raises(ExplorationLimitReached):
            reachable_markings(concurrent_net(8), max_states=5)


class TestAnalyze:
    def test_deadlock_verdict_and_witness(self):
        result = analyze(choice_net())
        assert result.deadlock
        assert result.analyzer == "full"
        assert result.exhaustive
        assert result.witness is not None
        assert result.witness.marking in (
            frozenset({"p1"}),
            frozenset({"p2"}),
        )
        assert len(result.witness.trace) == 1

    def test_witness_is_shortest(self):
        result = analyze(concurrent_net(3))
        assert result.witness is not None
        assert len(result.witness.trace) == 3

    def test_no_deadlock(self, loop_net):
        result = analyze(loop_net)
        assert not result.deadlock
        assert result.witness is None
        assert result.states == 2

    def test_bounded_analysis_not_exhaustive(self):
        result = analyze(concurrent_net(8), max_states=20)
        assert not result.exhaustive
        assert result.states <= 20
        assert "bounded" in result.verdict

    def test_describe_mentions_analyzer(self):
        assert analyze(choice_net()).describe().startswith("full:")
