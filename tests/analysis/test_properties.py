"""Tests for behavioural property checks (safeness, liveness, invariants)."""

from repro.analysis import (
    check_invariant,
    check_safeness,
    dead_transitions,
    find_violation,
    is_quasi_live,
    mutual_exclusion_holds,
)
from repro.models import choice_net, figure3_net, nsdp, rw
from repro.net import NetBuilder


class TestSafeness:
    def test_safe_net(self):
        report = check_safeness(nsdp(2))
        assert report
        assert "1-safe" in report.description

    def test_unsafe_net_with_trace(self):
        builder = NetBuilder()
        builder.place("p", marked=True)
        builder.place("q")
        builder.place("r", marked=True)
        builder.transition("t", inputs=["p"], outputs=["q"])
        builder.transition("u", inputs=["q"], outputs=["r"])
        report = check_safeness(builder.build())
        assert not report
        assert report.witness is not None
        assert report.witness.trace == ("t", "u")

    def test_bounded(self):
        report = check_safeness(nsdp(4), max_states=10)
        assert report
        assert "bounded" in report.description


class TestLiveness:
    def test_dead_transition_found(self):
        # Figure 3: D can never fire.
        dead = dead_transitions(figure3_net())
        assert dead == ["D"]

    def test_quasi_live_net(self):
        assert is_quasi_live(rw(2))

    def test_quasi_live_report_lists_dead(self):
        report = is_quasi_live(figure3_net())
        assert not report
        assert "D" in report.description


class TestInvariants:
    def test_holding_invariant(self, loop_net):
        report = check_invariant(
            loop_net, lambda m: len(m) == 1, description="one token"
        )
        assert report
        assert "holds" in report.description

    def test_violated_invariant_with_trace(self):
        report = check_invariant(
            choice_net(), lambda m: "p2" not in m, description="never p2"
        )
        assert not report
        assert report.witness is not None
        assert report.witness.trace == ("b",)

    def test_find_violation(self):
        witness = find_violation(choice_net(), lambda m: "p1" in m)
        assert witness is not None
        assert witness.trace == ("a",)

    def test_find_violation_none(self, loop_net):
        assert find_violation(loop_net, lambda m: "ghost" in m) is None


class TestMutualExclusion:
    def test_rw_writers_exclusive(self):
        net = rw(3)
        report = mutual_exclusion_holds(
            net, [f"writing{i}" for i in range(3)]
        )
        assert report

    def test_violation_detected(self):
        # Two independent tokens can mark both "critical" places.
        builder = NetBuilder()
        builder.place("a", marked=True)
        builder.place("b", marked=True)
        builder.place("csa")
        builder.place("csb")
        builder.transition("ta", inputs=["a"], outputs=["csa"])
        builder.transition("tb", inputs=["b"], outputs=["csb"])
        report = mutual_exclusion_holds(builder.build(), ["csa", "csb"])
        assert not report
        assert report.witness is not None
