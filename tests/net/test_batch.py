"""Batched numpy frontier expansion vs the scalar kernel.

The bit-matrix path (:mod:`repro.net.batch`) is an alternative encoding
of exactly the same successor relation: for any frontier it must produce
the scalar kernel's edges — same sources, same transitions, same
successor markings — raise the same 1-safety violations, and hash states
to the same shard keys.  These tests pin that equivalence on the Table 1
families, on a net wider than one 64-bit word, and on the splitmix64
fold itself.
"""

from __future__ import annotations

import pytest

from repro.models import asat, nsdp, over, rw
from repro.net import NetBuilder
from repro.net.batch import HAVE_NUMPY, mix64, state_key, words_of
from repro.net.exceptions import UnsafeNetError

requires_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy not installed (the [fast] extra)"
)

FAMILIES = [nsdp(4), asat(2), over(3), rw(6)]


def wide_pipeline(places: int = 70):
    """A chain net wider than one uint64 word (words_of > 1)."""
    builder = NetBuilder(f"pipeline_{places}")
    for i in range(places):
        builder.place(f"p{i}", marked=(i == 0))
    for i in range(places - 1):
        builder.transition(f"t{i}", inputs=[f"p{i}"], outputs=[f"p{i + 1}"])
    return builder.build()


def unsafe_net():
    """Firing ``t0`` drops a token on the already-marked place ``b``."""
    builder = NetBuilder("unsafe")
    builder.place("a", marked=True)
    builder.place("b", marked=True)
    builder.transition("t0", inputs=["a"], outputs=["b"])
    return builder.build()


def bfs_states(kernel, limit: int = 5000):
    """Deterministic BFS state list on the scalar kernel."""
    seen = {kernel.initial}
    order = [kernel.initial]
    i = 0
    while i < len(order) and len(order) < limit:
        for _, succ in kernel.successors(order[i]):
            if succ not in seen:
                seen.add(succ)
                order.append(succ)
        i += 1
    return order


class TestScalarKeys:
    def test_mix64_is_a_permutation_prefix(self):
        outputs = {mix64(x) for x in range(4096)}
        assert len(outputs) == 4096
        assert all(0 <= y < 1 << 64 for y in outputs)

    def test_words_of(self):
        assert words_of(1) == 1
        assert words_of(64) == 1
        assert words_of(65) == 2
        assert words_of(128) == 2
        assert words_of(129) == 3

    def test_state_key_depends_on_every_word(self):
        wide = (1 << 100) | 1
        assert state_key(wide, 2) != state_key(1, 2)
        assert state_key(wide, 2) != state_key(1 << 100, 2)


@requires_numpy
class TestBatchedEquivalence:
    @pytest.mark.parametrize("net", FAMILIES, ids=lambda n: n.name)
    def test_expand_matches_scalar_successors(self, net):
        from repro.net.batch import BatchedKernel

        kernel = net.kernel()
        batched = BatchedKernel(kernel)
        frontier = bfs_states(kernel)
        rows = batched.encode_rows(frontier)
        srcs, fired, succ, enabled_any = batched.expand(rows)
        decoded = batched.decode_rows(succ)
        # Regroup the batched edges per source row and compare with the
        # scalar kernel's per-state successor lists (as sets: the batch
        # groups by transition, the scalar loop by state).
        batched_edges = {}
        for s, t, bits in zip(srcs.tolist(), fired.tolist(), decoded):
            batched_edges.setdefault(int(s), set()).add((int(t), bits))
        for i, bits in enumerate(frontier):
            scalar = set(kernel.successors(bits))
            assert batched_edges.get(i, set()) == scalar
            assert bool(enabled_any[i]) == bool(scalar)

    def test_encode_decode_roundtrip_wide_net(self):
        from repro.net.batch import BatchedKernel

        net = wide_pipeline()
        kernel = net.kernel()
        assert words_of(kernel.num_places) > 1
        batched = BatchedKernel(kernel)
        frontier = bfs_states(kernel)
        assert len(frontier) == 70  # one state per token position
        assert batched.decode_rows(batched.encode_rows(frontier)) == frontier

    def test_expand_matches_scalar_on_wide_net(self):
        from repro.net.batch import BatchedKernel

        net = wide_pipeline()
        kernel = net.kernel()
        batched = BatchedKernel(kernel)
        frontier = bfs_states(kernel)
        srcs, fired, succ, _ = batched.expand(batched.encode_rows(frontier))
        decoded = batched.decode_rows(succ)
        got = sorted(
            (int(s), int(t), bits)
            for s, t, bits in zip(srcs.tolist(), fired.tolist(), decoded)
        )
        want = sorted(
            (i, t, bits)
            for i, state in enumerate(frontier)
            for t, bits in kernel.successors(state)
        )
        assert got == want

    def test_unsafe_parity_with_scalar(self):
        from repro.net.batch import BatchedKernel

        net = unsafe_net()
        kernel = net.kernel()
        batched = BatchedKernel(kernel)
        with pytest.raises(UnsafeNetError) as scalar_exc:
            kernel.fire(0, kernel.initial)
        with pytest.raises(UnsafeNetError) as batch_exc:
            batched.expand(batched.encode_rows([kernel.initial]))
        assert str(batch_exc.value) == str(scalar_exc.value)

    @pytest.mark.parametrize(
        "net", FAMILIES + [wide_pipeline()], ids=lambda n: n.name
    )
    def test_vectorized_state_keys_match_scalar(self, net):
        from repro.net.batch import BatchedKernel

        kernel = net.kernel()
        batched = BatchedKernel(kernel)
        frontier = bfs_states(kernel)
        words = words_of(kernel.num_places)
        keys = batched.state_keys(batched.encode_rows(frontier))
        assert keys.tolist() == [state_key(s, words) for s in frontier]
