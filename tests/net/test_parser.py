"""Tests for the textual net language parser and serializer."""

import pytest

from repro.net import ParseError, parse_net, to_text
from repro.models import figure3_net, nsdp

EXAMPLE = """
# a small choice net
net choice
place p0 marked
place p1
place p2
trans a : p0 -> p1
trans b : p0 -> p2
"""


class TestParse:
    def test_basic(self):
        net = parse_net(EXAMPLE)
        assert net.name == "choice"
        assert net.num_places == 3
        assert net.num_transitions == 2
        assert net.marking_names(net.initial_marking) == frozenset({"p0"})

    def test_arc_form(self):
        net = parse_net(
            """
            place p marked
            place q
            trans t
            arc p -> t
            arc t -> q
            """
        )
        assert net.num_arcs == 2

    def test_forward_references(self):
        # Transitions may reference places declared later in the file.
        net = parse_net(
            """
            trans t : p -> q
            place p marked
            place q
            """
        )
        assert net.num_arcs == 2

    def test_comments_and_blanks(self):
        net = parse_net("# only a comment\n\nplace p marked\ntrans t : p ->\n")
        assert net.num_places == 1

    def test_default_name(self):
        net = parse_net("place p marked\ntrans t : p ->\n", name="fallback")
        assert net.name == "fallback"

    def test_transition_without_outputs(self):
        net = parse_net("place p marked\ntrans t : p ->\n")
        assert net.post_places[0] == frozenset()


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "net a\nnet b\n",  # duplicate header
            "place\n",  # missing name
            "place p extra tokens here\n",
            "place p marke\n",  # typo'd marked
            "trans\n",
            "place p marked\ntrans t p ->\n",  # missing colon
            "place p marked\ntrans t : p\n",  # missing arrow
            "arc p -> \n",
            "place p\nfrobnicate p\n",  # unknown keyword
            "place p\nplace p\n",  # duplicate
            "place p marked\ntrans t : p -> ghost\n",  # unknown place
            "place p\nnet late\n",  # header after declarations
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            parse_net(text)

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            parse_net("place p marked\nplace p\ntrans t : p ->\n")
        assert excinfo.value.line == 2


class TestRoundTrip:
    @pytest.mark.parametrize("make", [figure3_net, lambda: nsdp(3)])
    def test_round_trip_preserves_net(self, make):
        net = make()
        again = parse_net(to_text(net))
        assert again == net

    def test_round_trip_is_stable(self):
        net = figure3_net()
        once = to_text(net)
        assert to_text(parse_net(once)) == once


def test_load_save(tmp_path):
    from repro.net import load_net, save_net

    net = figure3_net()
    path = str(tmp_path / "fig3.net")
    save_net(net, path)
    assert load_net(path) == net
