"""Tests for firing-interval annotations in the textual net language."""

import pytest

from repro.net import ParseError, parse_net, parse_timed_net

TIMED = """
net race
place p marked
place qa
place qb
trans fast : p -> qa @ [0,1]
trans slow : p -> qb @ [2,inf]
trans free : qa -> p
"""


class TestParseTimedNet:
    def test_intervals(self):
        tpn = parse_timed_net(TIMED)
        assert tpn.interval_of("fast") == (0, 1)
        assert tpn.interval_of("slow") == (2, None)
        assert tpn.interval_of("free") == (0, None)  # default

    def test_untimed_parser_ignores_intervals(self):
        net = parse_net(TIMED)
        assert net.num_transitions == 3

    def test_spaces_inside_interval(self):
        tpn = parse_timed_net(
            "place p marked\ntrans t : p -> @ [1, 4]\n"
        )
        assert tpn.interval_of("t") == (1, 4)

    def test_empty_lft_means_infinity(self):
        tpn = parse_timed_net("place p marked\ntrans t : p -> @ [3,]\n")
        assert tpn.interval_of("t") == (3, None)

    @pytest.mark.parametrize(
        "line",
        [
            "trans t : p -> @ 1,2\n",  # missing brackets
            "trans t : p -> @ [1]\n",  # one bound
            "trans t : p -> @ [a,b]\n",  # non-numeric
            "trans t : p -> @ [1,2,3]\n",  # too many bounds
        ],
    )
    def test_malformed_interval_rejected(self, line):
        with pytest.raises(ParseError):
            parse_timed_net("place p marked\n" + line)

    def test_invalid_interval_semantics_rejected(self):
        from repro.net import NetStructureError

        with pytest.raises(NetStructureError):
            parse_timed_net("place p marked\ntrans t : p -> @ [5,2]\n")

    def test_analysis_round_trip(self):
        from repro.timed import analyze

        result = analyze(parse_timed_net(TIMED))
        # 'slow' is preempted by 'fast'; the net cycles p <-> qa forever.
        assert not result.deadlock
