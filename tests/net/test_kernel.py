"""Differential tests: the bitmask marking kernel vs the reference rules.

The :class:`~repro.net.kernel.MarkingKernel` is observationally equivalent
to the frozenset implementation in :mod:`repro.net.petrinet` — same
enabled sets, same successors, same deadlock verdicts, same exceptions
with the same messages.  These tests hold it to that over random nets
(including unsafe ones, where the *errors* must match) and check the
incremental enabled-set maintenance against the full scan.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.models import random_net, random_state_machine_product
from repro.net import NetBuilder, NotEnabledError, UnsafeNetError
from repro.net.kernel import MarkingKernel, iter_bits

from tests.conftest import safe_nets, state_machine_nets

COMMON = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_choice():
    builder = NetBuilder("choice")
    builder.place("p0", marked=True)
    builder.place("p1")
    builder.place("p2")
    builder.transition("a", inputs=["p0"], outputs=["p1"])
    builder.transition("b", inputs=["p0"], outputs=["p2"])
    return builder.build()


class TestPacking:
    def test_iter_bits_ascending(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b1011)) == [0, 1, 3]

    def test_encode_decode_roundtrip(self):
        net = build_choice()
        kernel = net.kernel()
        marking = frozenset({0, 2})
        assert kernel.decode(kernel.encode(marking)) == marking
        assert kernel.initial == kernel.encode(net.initial_marking)

    def test_kernel_is_cached_on_the_net(self):
        net = build_choice()
        assert net.kernel() is net.kernel()

    def test_masks(self):
        net = build_choice()
        kernel = net.kernel()
        assert kernel.pre_mask[0] == 0b001
        assert kernel.post_mask[0] == 0b010
        assert kernel.clear_mask[0] == ~0b001

    def test_repr(self):
        assert "choice" in repr(build_choice().kernel())


class TestFixedNetEquivalence:
    def test_fire_not_enabled_matches_reference(self):
        net = build_choice()
        kernel = net.kernel()
        bits = kernel.encode(frozenset({1}))
        with pytest.raises(NotEnabledError) as kernel_err:
            kernel.fire(0, bits)
        with pytest.raises(NotEnabledError) as reference_err:
            net.fire(0, frozenset({1}))
        assert str(kernel_err.value) == str(reference_err.value)

    def test_unsafe_firing_matches_reference(self):
        builder = NetBuilder("unsafe")
        builder.place("p", marked=True)
        builder.place("q", marked=True)
        builder.transition("t", inputs=["p"], outputs=["q"])
        net = builder.build()
        kernel = net.kernel()
        with pytest.raises(UnsafeNetError) as kernel_err:
            kernel.fire(0, kernel.initial)
        with pytest.raises(UnsafeNetError) as reference_err:
            net.fire(0, net.initial_marking)
        assert str(kernel_err.value) == str(reference_err.value)


def _walk_markings(net, rng, steps=40):
    """A random walk's markings (reference rules), initial included."""
    marking = net.initial_marking
    seen = [marking]
    for _ in range(steps):
        enabled = net.enabled_transitions(marking)
        if not enabled:
            break
        marking = net.fire(rng.choice(enabled), marking)
        seen.append(marking)
    return seen


class TestDifferential:
    @given(net=state_machine_nets(), seed=st.integers(0, 2**32 - 1))
    @settings(**COMMON)
    def test_successors_match_on_walks(self, net, seed):
        kernel = net.kernel()
        rng = random.Random(seed)
        for marking in _walk_markings(net, rng):
            bits = kernel.encode(marking)
            assert kernel.enabled_transitions(bits) == (
                net.enabled_transitions(marking)
            )
            reference = net.successors(marking)
            packed = kernel.successors(bits)
            assert [t for t, _ in packed] == [t for t, _ in reference]
            assert [kernel.decode(b) for _, b in packed] == [
                m for _, m in reference
            ]
            assert kernel.is_deadlocked(bits) == net.is_deadlocked(marking)

    @given(net=safe_nets(), seed=st.integers(0, 2**32 - 1))
    @settings(**COMMON)
    def test_errors_match_on_random_nets(self, net, seed):
        """On possibly-unsafe nets both paths raise the same error."""
        kernel = net.kernel()
        rng = random.Random(seed)
        marking = net.initial_marking
        for _ in range(40):
            enabled = net.enabled_transitions(marking)
            bits = kernel.encode(marking)
            assert kernel.enabled_transitions(bits) == enabled
            if not enabled:
                break
            t = rng.choice(enabled)
            try:
                expected = net.fire(t, marking)
            except UnsafeNetError as reference_err:
                with pytest.raises(UnsafeNetError) as kernel_err:
                    kernel.fire(t, bits)
                assert str(kernel_err.value) == str(reference_err)
                with pytest.raises(UnsafeNetError):
                    kernel.fire_enabled(t, bits)
                with pytest.raises(UnsafeNetError):
                    kernel.successors(bits)
                break
            assert kernel.decode(kernel.fire(t, bits)) == expected
            assert kernel.fire_enabled(t, bits) == kernel.fire(t, bits)
            marking = expected

    @given(net=state_machine_nets(), seed=st.integers(0, 2**32 - 1))
    @settings(**COMMON)
    def test_incremental_enabling_matches_full_scan(self, net, seed):
        kernel = net.kernel()
        rng = random.Random(seed)
        bits = kernel.initial
        enabled = kernel.enabled_mask(bits)
        for _ in range(40):
            candidates = list(iter_bits(enabled))
            if not candidates:
                break
            fired = rng.choice(candidates)
            successor = kernel.fire_enabled(fired, bits)
            enabled = kernel.update_enabled_mask(enabled, fired, successor)
            assert enabled == kernel.enabled_mask(successor)
            bits = successor

    def test_affected_covers_presets_touching_fired(self):
        rng = random.Random(7)
        net = random_state_machine_product(rng)
        kernel = net.kernel()
        for t in range(net.num_transitions):
            touched = kernel.pre_mask[t] | kernel.post_mask[t]
            expected = tuple(
                u
                for u in range(net.num_transitions)
                if kernel.pre_mask[u] & touched
            )
            assert kernel.affected[t] == expected


class TestIndexTables:
    def test_index_tables_are_sorted_views(self):
        rng = random.Random(11)
        net = random_net(rng)
        kernel = net.kernel()
        for t in range(net.num_transitions):
            assert kernel.pre_index[t] == tuple(sorted(net.pre_places[t]))
            assert kernel.post_index[t] == tuple(sorted(net.post_places[t]))
            assert kernel.pre_not_post_index[t] == tuple(
                sorted(net.pre_places[t] - net.post_places[t])
            )
            assert kernel.post_not_pre_index[t] == tuple(
                sorted(net.post_places[t] - net.pre_places[t])
            )
        for p in range(net.num_places):
            assert kernel.consumers[p] == tuple(
                sorted(net.post_transitions[p])
            )
            assert kernel.producers[p] == tuple(
                sorted(net.pre_transitions[p])
            )

    def test_pickled_net_rebuilds_kernel(self):
        import pickle

        net = build_choice()
        first = net.kernel()
        clone = pickle.loads(pickle.dumps(net))
        rebuilt = clone.kernel()
        assert rebuilt is not first
        assert rebuilt.pre_mask == first.pre_mask
        assert rebuilt.initial == first.initial


class TestAnalyzerEquivalence:
    """Graph-level equivalence of the kernel and reference spaces."""

    @given(net=state_machine_nets())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_full_analysis_is_byte_identical(self, net):
        import repro.analysis.reachability as full

        reference = full.explore(net, use_kernel=False, max_states=3000)
        kernelized = full.explore(net, use_kernel=True, max_states=3000)
        assert list(reference.states()) == list(kernelized.states())
        assert list(reference.edges()) == list(kernelized.edges())
        assert reference.deadlocks == kernelized.deadlocks

    @given(net=state_machine_nets())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_stubborn_analysis_is_byte_identical(self, net):
        import repro.stubborn.explorer as stubborn

        reference = stubborn.explore_reduced(
            net, use_kernel=False, max_states=3000
        )
        kernelized = stubborn.explore_reduced(
            net, use_kernel=True, max_states=3000
        )
        assert list(reference.states()) == list(kernelized.states())
        assert list(reference.edges()) == list(kernelized.edges())
        assert reference.deadlocks == kernelized.deadlocks

    @given(net=state_machine_nets())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_check_safe_matches_reference(self, net):
        from repro.net.validation import check_safe

        reference = check_safe(net, use_kernel=False)
        kernelized = check_safe(net, use_kernel=True)
        assert reference.status == kernelized.status
        assert reference.states == kernelized.states
        assert reference.violation == kernelized.violation

    def test_deadlock_witness_matches_reference(self):
        import repro.analysis.reachability as full
        from repro.models import nsdp

        net = nsdp(3)
        reference = full.analyze(net, use_kernel=False)
        kernelized = full.analyze(net, use_kernel=True)
        assert str(reference.witness) == str(kernelized.witness)
        assert reference.extras["kernel"] is False
        assert kernelized.extras["kernel"] is True


class TestClosureMemo:
    """The validated replay memo must be invisible except in speed."""

    def test_memo_hits_replay_identical_closures(self):
        from collections import deque

        from repro.models import nsdp

        net = nsdp(5)
        warm = net.kernel()
        cold_net = nsdp(5)
        # Walk every reachable marking twice on the memoized kernel; the
        # second pass is all hits and must reproduce the closures a
        # fresh (cold) kernel computes from scratch.
        frontier = deque([warm.initial])
        seen = {warm.initial}
        states = []
        while frontier:
            bits = frontier.popleft()
            states.append(bits)
            for _, succ in warm.successors(bits):
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        for _ in range(2):
            cold = type(warm)(cold_net)
            for bits in states:
                mask = warm.enabled_mask(bits)
                todo = mask
                while todo:
                    seed = todo & -todo
                    a = warm.stubborn_closure(bits, seed, mask)
                    b = cold.stubborn_closure(bits, seed, mask)
                    assert a == b
                    todo &= ~seed
        assert warm.stat_closure_memo_hits > 0

    def test_iteration_counter_is_cache_blind(self):
        import repro.stubborn.explorer as stubborn
        from repro.models import nsdp
        from repro.obs import names

        net = nsdp(4)
        first = stubborn.analyze(net, use_kernel=True, want_witness=False)
        second = stubborn.analyze(net, use_kernel=True, want_witness=False)
        key = names.STUBBORN_CLOSURE_ITERATIONS
        assert first.extras[key] == second.extras[key]
        assert first.states == second.states
        assert first.edges == second.edges

    def test_memo_cap_stops_insertions(self):
        import repro.net.kernel as kernel_mod
        from repro.models import nsdp

        net = nsdp(4)
        k = net.kernel()
        original = kernel_mod.CLOSURE_MEMO_CAP
        kernel_mod.CLOSURE_MEMO_CAP = 0
        try:
            # Drive every seed of every reachable state through the
            # closure so the dynamic (memoizable) branch is exercised.
            frontier = [k.initial]
            seen = {k.initial}
            while frontier:
                bits = frontier.pop()
                mask = k.enabled_mask(bits)
                todo = mask
                while todo:
                    seed = todo & -todo
                    k.stubborn_closure(bits, seed, mask)
                    todo ^= seed
                for _, succ in k.successors(bits):
                    if succ not in seen:
                        seen.add(succ)
                        frontier.append(succ)
            assert len(k._closure_memo) == 0
        finally:
            kernel_mod.CLOSURE_MEMO_CAP = original
