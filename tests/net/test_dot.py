"""Tests for DOT export of nets and reachability graphs."""

from repro.analysis import explore
from repro.models import choice_net
from repro.net import net_to_dot, reachability_to_dot


class TestNetToDot:
    def test_contains_nodes_and_arcs(self):
        net = choice_net()
        dot = net_to_dot(net)
        assert dot.startswith("digraph")
        assert '"p_p0"' in dot
        assert '"t_a"' in dot
        assert '"p_p0" -> "t_a"' in dot
        assert dot.rstrip().endswith("}")

    def test_marked_place_highlighted(self):
        dot = net_to_dot(choice_net())
        assert "fillcolor" in dot
        assert "●" in dot

    def test_custom_marking(self):
        net = choice_net()
        dot = net_to_dot(net, marking=net.marking_from_names(["p1"]))
        assert "p1 ●" in dot

    def test_quoting(self):
        from repro.net import NetBuilder

        builder = NetBuilder('weird"name')
        builder.place('pl"ace', marked=True)
        builder.transition("t", inputs=['pl"ace'])
        dot = net_to_dot(builder.build())
        assert '\\"' in dot


class TestReachabilityToDot:
    def test_full_graph(self):
        net = choice_net()
        graph = explore(net)
        dot = reachability_to_dot(
            net,
            graph.states(),
            graph.edges(),
            initial=net.initial_marking,
            deadlocks=graph.deadlocks,
        )
        assert dot.count("->") == graph.num_edges
        # deadlock states get doublecircle
        assert "doublecircle" in dot
        assert "{p1}" in dot or "{p2}" in dot

    def test_custom_labels(self):
        net = choice_net()
        graph = explore(net)
        dot = reachability_to_dot(
            net,
            graph.states(),
            graph.edges(),
            state_label=lambda s: f"S{len(s)}",
        )
        assert "S1" in dot
