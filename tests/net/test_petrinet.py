"""Unit tests for the Petri-net kernel: structure, enabling, firing."""

import pytest

from repro.net import (
    DuplicateNodeError,
    NetBuilder,
    NetStructureError,
    NotEnabledError,
    PetriNet,
    UnknownNodeError,
    UnsafeNetError,
)


def build_simple() -> PetriNet:
    builder = NetBuilder("simple")
    builder.place("p0", marked=True)
    builder.place("p1")
    builder.place("p2")
    builder.transition("t0", inputs=["p0"], outputs=["p1"])
    builder.transition("t1", inputs=["p1"], outputs=["p2"])
    return builder.build()


class TestBuilder:
    def test_counts(self):
        net = build_simple()
        assert net.num_places == 3
        assert net.num_transitions == 2
        assert net.num_arcs == 4

    def test_initial_marking(self):
        net = build_simple()
        assert net.marking_names(net.initial_marking) == frozenset({"p0"})

    def test_duplicate_place_rejected(self):
        builder = NetBuilder()
        builder.place("p")
        with pytest.raises(DuplicateNodeError):
            builder.place("p")

    def test_duplicate_transition_rejected(self):
        builder = NetBuilder()
        builder.place("p")
        builder.transition("t", inputs=["p"])
        with pytest.raises(DuplicateNodeError):
            builder.transition("t", inputs=["p"])

    def test_place_transition_name_collision_rejected(self):
        builder = NetBuilder()
        builder.place("x")
        with pytest.raises(DuplicateNodeError):
            builder.transition("x", inputs=["x"])

    def test_arc_between_places_rejected(self):
        builder = NetBuilder()
        builder.place("p")
        builder.place("q")
        with pytest.raises(NetStructureError):
            builder.arc("p", "q")

    def test_arc_between_transitions_rejected(self):
        builder = NetBuilder()
        builder.place("p")
        builder.transition("t", inputs=["p"])
        builder.transition("u", inputs=["p"])
        with pytest.raises(NetStructureError):
            builder.arc("t", "u")

    def test_arc_to_unknown_node_rejected(self):
        builder = NetBuilder()
        builder.place("p")
        with pytest.raises(UnknownNodeError):
            builder.arc("p", "ghost")

    def test_transition_with_unknown_place_rejected(self):
        builder = NetBuilder()
        with pytest.raises(UnknownNodeError):
            builder.transition("t", inputs=["nope"])

    def test_source_transition_rejected_by_default(self):
        builder = NetBuilder()
        builder.place("p")
        builder.transition("t", outputs=["p"])
        with pytest.raises(NetStructureError):
            builder.build()

    def test_source_transition_allowed_explicitly(self):
        builder = NetBuilder()
        builder.place("p")
        builder.transition("t", outputs=["p"])
        net = builder.build(allow_source_transitions=True)
        assert net.num_transitions == 1

    def test_mark_after_declaration(self):
        builder = NetBuilder()
        builder.place("p")
        builder.mark("p")
        builder.transition("t", inputs=["p"])
        net = builder.build()
        assert net.marking_names(net.initial_marking) == frozenset({"p"})

    def test_mark_unknown_place_rejected(self):
        builder = NetBuilder()
        with pytest.raises(UnknownNodeError):
            builder.mark("ghost")

    def test_places_bulk_declaration(self):
        builder = NetBuilder()
        names = builder.places("a", "b", "c", marked=True)
        assert names == ["a", "b", "c"]
        builder.transition("t", inputs=["a"])
        assert builder.build().initial_marking == frozenset({0, 1, 2})


class TestDynamics:
    def test_enabled_at_initial(self):
        net = build_simple()
        t0 = net.transition_id("t0")
        t1 = net.transition_id("t1")
        assert net.is_enabled(t0, net.initial_marking)
        assert not net.is_enabled(t1, net.initial_marking)
        assert net.enabled_transitions(net.initial_marking) == [t0]

    def test_fire_moves_token(self):
        net = build_simple()
        after = net.fire_by_name("t0", net.initial_marking)
        assert net.marking_names(after) == frozenset({"p1"})

    def test_fire_disabled_raises(self):
        net = build_simple()
        with pytest.raises(NotEnabledError):
            net.fire_by_name("t1", net.initial_marking)

    def test_fire_unsafe_raises(self):
        builder = NetBuilder()
        builder.place("a", marked=True)
        builder.place("b", marked=True)
        builder.transition("t", inputs=["a"], outputs=["b"])
        net = builder.build()
        with pytest.raises(UnsafeNetError):
            net.fire_by_name("t", net.initial_marking)

    def test_self_loop_keeps_token(self):
        builder = NetBuilder()
        builder.place("lock", marked=True)
        builder.place("p", marked=True)
        builder.place("q")
        builder.transition("t", inputs=["p", "lock"], outputs=["q", "lock"])
        net = builder.build()
        after = net.fire_by_name("t", net.initial_marking)
        assert net.marking_names(after) == frozenset({"q", "lock"})

    def test_successors(self):
        net = build_simple()
        succs = net.successors(net.initial_marking)
        assert len(succs) == 1
        t, marking = succs[0]
        assert net.transition_name(t) == "t0"
        assert net.marking_names(marking) == frozenset({"p1"})

    def test_deadlock_detection(self):
        net = build_simple()
        m1 = net.fire_by_name("t0", net.initial_marking)
        m2 = net.fire_by_name("t1", m1)
        assert not net.is_deadlocked(net.initial_marking)
        assert net.is_deadlocked(m2)


class TestIdentity:
    def test_equality_and_hash(self):
        assert build_simple() == build_simple()
        assert hash(build_simple()) == hash(build_simple())

    def test_inequality_on_marking(self):
        builder = NetBuilder("simple")
        builder.place("p0")
        builder.place("p1")
        builder.place("p2")
        builder.transition("t0", inputs=["p0"], outputs=["p1"])
        builder.transition("t1", inputs=["p1"], outputs=["p2"])
        assert builder.build() != build_simple()

    def test_repr_mentions_sizes(self):
        assert "|P|=3" in repr(build_simple())

    def test_unknown_lookups_raise(self):
        net = build_simple()
        with pytest.raises(UnknownNodeError):
            net.place_id("nope")
        with pytest.raises(UnknownNodeError):
            net.transition_id("nope")

    def test_arcs_iteration(self):
        net = build_simple()
        arcs = set(net.arcs())
        assert ("p0", "t0") in arcs
        assert ("t0", "p1") in arcs
        assert len(arcs) == 4


class TestCanonicalHash:
    def test_stable_across_declaration_order(self):
        a = NetBuilder("one")
        a.place("p0", marked=True)
        a.place("p1")
        a.place("p2")
        a.transition("t0", inputs=["p0"], outputs=["p1"])
        a.transition("t1", inputs=["p1"], outputs=["p2"])

        b = NetBuilder("two")  # same structure, everything declared reversed
        b.place("p2")
        b.place("p1")
        b.place("p0")
        b.mark("p0")
        b.transition("t1", inputs=["p1"], outputs=["p2"])
        b.transition("t0", inputs=["p0"], outputs=["p1"])

        assert a.build().canonical_form() == b.build().canonical_form()
        assert a.build().canonical_hash() == b.build().canonical_hash()

    def test_name_does_not_affect_hash(self):
        a = build_simple()
        b = NetBuilder("renamed")
        b.place("p0", marked=True)
        b.place("p1")
        b.place("p2")
        b.transition("t0", inputs=["p0"], outputs=["p1"])
        b.transition("t1", inputs=["p1"], outputs=["p2"])
        assert a.canonical_hash() == b.build().canonical_hash()

    def test_structure_changes_hash(self):
        base = build_simple().canonical_hash()

        different_marking = NetBuilder("simple")
        different_marking.place("p0")
        different_marking.place("p1")
        different_marking.place("p2")
        different_marking.transition("t0", inputs=["p0"], outputs=["p1"])
        different_marking.transition("t1", inputs=["p1"], outputs=["p2"])
        assert different_marking.build().canonical_hash() != base

        different_arc = NetBuilder("simple")
        different_arc.place("p0", marked=True)
        different_arc.place("p1")
        different_arc.place("p2")
        different_arc.transition("t0", inputs=["p0"], outputs=["p2"])
        different_arc.transition("t1", inputs=["p1"], outputs=["p2"])
        assert different_arc.build().canonical_hash() != base

    def test_hash_is_hex_sha256(self):
        digest = build_simple().canonical_hash()
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")
