"""Tests for net composition operators (rename/prefix/parallel/fuse)."""

import pytest

from repro.analysis import explore
from repro.net import (
    NetBuilder,
    NetStructureError,
    UnknownNodeError,
    fuse_places,
    parallel,
    prefix,
    rename,
)


def cell(name="cell"):
    builder = NetBuilder(name)
    builder.place("idle", marked=True)
    builder.place("busy")
    builder.transition("go", inputs=["idle"], outputs=["busy"])
    builder.transition("stop", inputs=["busy"], outputs=["idle"])
    return builder.build()


class TestRename:
    def test_dict_rename(self):
        net = rename(cell(), place_map={"idle": "free"})
        assert "free" in net.places
        assert "idle" not in net.places

    def test_callable_rename(self):
        net = rename(cell(), transition_map=lambda t: t.upper())
        assert set(net.transitions) == {"GO", "STOP"}

    def test_preserves_behavior(self):
        original = explore(cell())
        renamed = explore(prefix(cell(), "x."))
        assert original.num_states == renamed.num_states
        assert original.num_edges == renamed.num_edges

    def test_non_injective_rejected(self):
        with pytest.raises(NetStructureError):
            rename(cell(), place_map=lambda p: "same")

    def test_new_name(self):
        assert rename(cell(), name="other").name == "other"


class TestParallel:
    def test_disjoint_union(self):
        net = parallel([prefix(cell(), "a."), prefix(cell(), "b.")])
        assert net.num_places == 4
        assert net.num_transitions == 4
        # Independent components: state count is the product.
        assert explore(net).num_states == 4

    def test_duplicate_names_rejected(self):
        with pytest.raises(NetStructureError):
            parallel([cell(), cell()])

    def test_marking_union(self):
        net = parallel([prefix(cell(), "a."), prefix(cell(), "b.")])
        names = net.marking_names(net.initial_marking)
        assert names == frozenset({"a.idle", "b.idle"})


class TestFusePlaces:
    def test_shared_resource(self):
        # Two cells sharing a single "machine" resource.
        a, b = prefix(cell(), "a."), prefix(cell(), "b.")
        both = parallel([a, b])
        fused = fuse_places(
            both, [["a.idle", "b.idle"]], names=["machine_free"]
        )
        assert "machine_free" in fused.places
        assert fused.num_places == 3
        # The fused place inherits all four arcs.
        consumers = fused.post_transitions[fused.place_id("machine_free")]
        assert len(consumers) == 2

    def test_marked_if_any_member_marked(self):
        both = parallel([prefix(cell(), "a."), prefix(cell(), "b.")])
        fused = fuse_places(both, [["a.idle", "b.busy"]])
        assert fused.place_id("a.idle") in fused.initial_marking

    def test_overlapping_groups_rejected(self):
        both = parallel([prefix(cell(), "a."), prefix(cell(), "b.")])
        with pytest.raises(NetStructureError):
            fuse_places(both, [["a.idle", "b.idle"], ["b.idle", "b.busy"]])

    def test_unknown_place_rejected(self):
        with pytest.raises(UnknownNodeError):
            fuse_places(cell(), [["ghost"]])

    def test_empty_group_rejected(self):
        with pytest.raises(NetStructureError):
            fuse_places(cell(), [[]])

    def test_names_length_mismatch_rejected(self):
        both = parallel([prefix(cell(), "a."), prefix(cell(), "b.")])
        with pytest.raises(NetStructureError):
            fuse_places(both, [["a.idle", "b.idle"]], names=["x", "y"])
