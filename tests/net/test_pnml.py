"""Tests for the PNML subset importer/exporter."""

import pytest

from repro.models import figure3_net, figure7_net
from repro.net import ParseError, parse_pnml, to_pnml

MINIMAL = """<?xml version="1.0"?>
<pnml xmlns="http://www.pnml.org/version-2009/grammar/pnml">
  <net id="n1" type="http://www.pnml.org/version-2009/grammar/ptnet">
    <page id="g">
      <place id="p1"><initialMarking><text>1</text></initialMarking></place>
      <place id="p2"/>
      <transition id="t1"/>
      <arc id="a1" source="p1" target="t1"/>
      <arc id="a2" source="t1" target="p2"/>
    </page>
  </net>
</pnml>
"""


class TestParsePnml:
    def test_minimal(self):
        net = parse_pnml(MINIMAL)
        assert net.num_places == 2
        assert net.num_transitions == 1
        assert net.marking_names(net.initial_marking) == frozenset({"p1"})

    def test_names_from_labels(self):
        text = MINIMAL.replace(
            '<place id="p2"/>',
            '<place id="p2"><name><text>buffer</text></name></place>',
        )
        net = parse_pnml(text)
        assert "buffer" in net.places

    def test_duplicate_labels_uniquified(self):
        text = MINIMAL.replace(
            '<place id="p2"/>',
            '<place id="p2"><name><text>p1</text></name></place>',
        )
        net = parse_pnml(text)
        assert len(set(net.places)) == 2

    def test_rejects_multi_token_marking(self):
        text = MINIMAL.replace(
            "<initialMarking><text>1</text></initialMarking>",
            "<initialMarking><text>2</text></initialMarking>",
        )
        with pytest.raises(ParseError):
            parse_pnml(text)

    def test_rejects_weighted_arc(self):
        text = MINIMAL.replace(
            '<arc id="a1" source="p1" target="t1"/>',
            '<arc id="a1" source="p1" target="t1">'
            "<inscription><text>3</text></inscription></arc>",
        )
        with pytest.raises(ParseError):
            parse_pnml(text)

    def test_rejects_dangling_arc(self):
        text = MINIMAL.replace('target="t1"/>', 'target="ghost"/>', 1)
        with pytest.raises(ParseError):
            parse_pnml(text)

    def test_rejects_invalid_xml(self):
        with pytest.raises(ParseError):
            parse_pnml("<pnml><net>")

    def test_rejects_missing_net(self):
        with pytest.raises(ParseError):
            parse_pnml("<pnml/>")


class TestRoundTrip:
    @pytest.mark.parametrize("make", [figure3_net, figure7_net])
    def test_round_trip(self, make):
        net = make()
        again = parse_pnml(to_pnml(net))
        assert again == net

    def test_output_is_namespaced(self):
        text = to_pnml(figure3_net())
        assert "http://www.pnml.org/version-2009/grammar/pnml" in text


def test_load_save(tmp_path):
    from repro.net import load_pnml, save_pnml

    net = figure3_net()
    path = str(tmp_path / "fig3.pnml")
    save_pnml(net, path)
    assert load_pnml(path) == net
