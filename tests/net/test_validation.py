"""Tests for structural diagnostics and the dynamic safety check."""

from repro.models import nsdp
from repro.net import NetBuilder, check_safe, diagnose


class TestDiagnose:
    def test_clean_net(self):
        assert diagnose(nsdp(3)).clean

    def test_isolated_place(self):
        builder = NetBuilder()
        builder.place("used", marked=True)
        builder.place("orphan")
        builder.transition("t", inputs=["used"])
        diagnostics = diagnose(builder.build())
        assert diagnostics.isolated_places == ["orphan"]
        assert not diagnostics.clean
        assert "orphan" in diagnostics.summary()

    def test_sink_transition(self):
        builder = NetBuilder()
        builder.place("p", marked=True)
        builder.transition("sink", inputs=["p"])
        assert diagnose(builder.build()).sink_transitions == ["sink"]

    def test_structurally_dead_transition(self):
        builder = NetBuilder()
        builder.place("p", marked=True)
        builder.place("never")  # unmarked, no producers
        builder.place("out")
        builder.transition("dead", inputs=["p", "never"], outputs=["out"])
        diagnostics = diagnose(builder.build())
        assert diagnostics.structurally_dead_transitions == ["dead"]
        assert diagnostics.unmarked_source_places == ["never"]

    def test_summary_empty_when_clean(self):
        assert diagnose(nsdp(2)).summary() == ""


class TestCheckSafe:
    def test_safe_net_passes(self):
        verdict = check_safe(nsdp(3))
        assert verdict  # truthiness = proven safe
        assert verdict.status == "safe"
        assert verdict.violation is None
        assert verdict.states > 0

    def test_unsafe_net_reported(self):
        builder = NetBuilder()
        builder.place("p", marked=True)
        builder.place("q", marked=True)
        builder.place("r", marked=True)
        builder.transition("t", inputs=["p"], outputs=["q"])
        verdict = check_safe(builder.build())
        assert not verdict
        assert verdict.status == "unsafe"
        assert verdict.violation is not None
        assert "q" in verdict.violation

    def test_bounded_check_is_unknown_not_safe(self):
        # A large net with a tiny budget: hitting the bound must not be
        # conflated with a safety proof.
        verdict = check_safe(nsdp(4), max_states=10)
        assert not verdict
        assert verdict.status == "unknown"
        assert verdict.violation is None
