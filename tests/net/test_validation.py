"""Tests for structural diagnostics and the dynamic safety check."""

import pytest

from repro.models import nsdp
from repro.net import NetBuilder, UnsafeNetError, check_safe, diagnose


class TestDiagnose:
    def test_clean_net(self):
        assert diagnose(nsdp(3)).clean

    def test_isolated_place(self):
        builder = NetBuilder()
        builder.place("used", marked=True)
        builder.place("orphan")
        builder.transition("t", inputs=["used"])
        diagnostics = diagnose(builder.build())
        assert diagnostics.isolated_places == ["orphan"]
        assert not diagnostics.clean
        assert "orphan" in diagnostics.summary()

    def test_sink_transition(self):
        builder = NetBuilder()
        builder.place("p", marked=True)
        builder.transition("sink", inputs=["p"])
        assert diagnose(builder.build()).sink_transitions == ["sink"]

    def test_structurally_dead_transition(self):
        builder = NetBuilder()
        builder.place("p", marked=True)
        builder.place("never")  # unmarked, no producers
        builder.place("out")
        builder.transition("dead", inputs=["p", "never"], outputs=["out"])
        diagnostics = diagnose(builder.build())
        assert diagnostics.structurally_dead_transitions == ["dead"]
        assert diagnostics.unmarked_source_places == ["never"]

    def test_summary_empty_when_clean(self):
        assert diagnose(nsdp(2)).summary() == ""


class TestCheckSafe:
    def test_safe_net_passes(self):
        assert check_safe(nsdp(3))

    def test_unsafe_net_raises(self):
        builder = NetBuilder()
        builder.place("p", marked=True)
        builder.place("q", marked=True)
        builder.place("r", marked=True)
        builder.transition("t", inputs=["p"], outputs=["q"])
        with pytest.raises(UnsafeNetError):
            check_safe(builder.build())

    def test_bounded_check_returns_true(self):
        # A large net with a tiny budget: the bounded check passes without
        # claiming a proof.
        assert check_safe(nsdp(4), max_states=10)
