"""Tests for the conflict relation and maximal conflict sets (Def. 2.2)."""

from repro.models import choice_net, conflict_pairs_net, figure3_net
from repro.net import NetBuilder, StructuralInfo, conflict, maximal_conflict_sets
from repro.net.structure import (
    are_independent,
    conflict_graph,
    conflict_places,
    restrict_to_enabled,
)


def names(net, component):
    return frozenset(net.transitions[t] for t in component)


class TestConflict:
    def test_self_conflict(self, choice):
        a = choice.transition_id("a")
        assert conflict(choice, a, a)

    def test_shared_input_conflicts(self, choice):
        a = choice.transition_id("a")
        b = choice.transition_id("b")
        assert conflict(choice, a, b)

    def test_disjoint_inputs_do_not_conflict(self):
        net = conflict_pairs_net(2)
        a0 = net.transition_id("A0")
        a1 = net.transition_id("A1")
        assert not conflict(net, a0, a1)

    def test_conflict_graph_no_self_loops(self, choice):
        adjacency = conflict_graph(choice)
        for t, neighbors in enumerate(adjacency):
            assert t not in neighbors

    def test_output_sharing_is_not_conflict(self):
        builder = NetBuilder()
        builder.place("p", marked=True)
        builder.place("q", marked=True)
        builder.place("r")
        builder.transition("t", inputs=["p"], outputs=["r"])
        builder.transition("u", inputs=["q"], outputs=["r"])
        net = builder.build()
        assert not conflict(net, 0, 1)


class TestMaximalConflictSets:
    def test_pairs(self):
        net = conflict_pairs_net(3)
        components = maximal_conflict_sets(net)
        assert len(components) == 3
        assert {names(net, c) for c in components} == {
            frozenset({"A0", "B0"}),
            frozenset({"A1", "B1"}),
            frozenset({"A2", "B2"}),
        }

    def test_singletons(self):
        from repro.models import concurrent_net

        net = concurrent_net(4)
        components = maximal_conflict_sets(net)
        assert all(len(c) == 1 for c in components)
        assert len(components) == 4

    def test_figure3_components(self):
        net = figure3_net()
        components = maximal_conflict_sets(net)
        assert {names(net, c) for c in components} == {
            frozenset({"A", "B"}),
            frozenset({"C", "D"}),
        }

    def test_closure_property(self):
        # No transition outside a component conflicts with a member.
        net = figure3_net()
        for component in maximal_conflict_sets(net):
            outside = set(range(net.num_transitions)) - component
            for t in outside:
                for u in component:
                    assert not conflict(net, t, u)

    def test_deterministic_order(self):
        net = conflict_pairs_net(3)
        assert maximal_conflict_sets(net) == maximal_conflict_sets(net)


class TestStructuralInfo:
    def test_mcs_membership(self):
        net = figure3_net()
        info = StructuralInfo(net)
        a = net.transition_id("A")
        b = net.transition_id("B")
        assert info.mcs(a) == info.mcs(b)
        assert b in info.conflicters(a)

    def test_conflict_places(self, choice):
        assert conflict_places(choice) == frozenset({choice.place_id("p0")})

    def test_conflicting_pairs_sorted_unique(self):
        net = conflict_pairs_net(2)
        info = StructuralInfo(net)
        assert len(info.conflicting_pairs) == 2
        for t, u in info.conflicting_pairs:
            assert t < u

    def test_nontrivial_mcs(self):
        from repro.models import concurrent_net

        info = StructuralInfo(concurrent_net(3))
        assert info.nontrivial_mcs() == []
        info2 = StructuralInfo(conflict_pairs_net(2))
        assert len(info2.nontrivial_mcs()) == 2

    def test_transitions_in_conflict(self, choice):
        info = StructuralInfo(choice)
        assert info.transitions_in_conflict() == frozenset({0, 1})


class TestIndependence:
    def test_same_transition_not_independent(self, choice):
        assert not are_independent(choice, 0, 0)

    def test_conflicting_not_independent(self, choice):
        assert not are_independent(choice, 0, 1)

    def test_disjoint_independent(self):
        net = conflict_pairs_net(2)
        a0 = net.transition_id("A0")
        b1 = net.transition_id("B1")
        assert are_independent(net, a0, b1)


def test_restrict_to_enabled():
    net = conflict_pairs_net(2)
    components = maximal_conflict_sets(net)
    a0 = net.transition_id("A0")
    restricted = restrict_to_enabled(components, {a0})
    assert restricted == [frozenset({a0})]
