"""SLO report: exposition parsing, quantile estimation, rendering."""

import math

from repro.obs.exporters import prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    format_slo,
    parse_histograms,
    parse_samples,
)

EXPOSITION = """\
# HELP serve_queue_wait_seconds Time queued before dispatch.
# TYPE serve_queue_wait_seconds histogram
serve_queue_wait_seconds_bucket{family="nsdp",method="gpo",le="0.01"} 2
serve_queue_wait_seconds_bucket{family="nsdp",method="gpo",le="0.1"} 4
serve_queue_wait_seconds_bucket{family="nsdp",method="gpo",le="+Inf"} 4
serve_queue_wait_seconds_sum{family="nsdp",method="gpo"} 0.12
serve_queue_wait_seconds_count{family="nsdp",method="gpo"} 4
serve_search_seconds_bucket{family="nsdp",method="gpo",le="1.0"} 3
serve_search_seconds_bucket{family="nsdp",method="gpo",le="+Inf"} 4
serve_search_seconds_sum{family="nsdp",method="gpo"} 1.6
serve_search_seconds_count{family="nsdp",method="gpo"} 4
other_metric_total 17
"""


class TestParsing:
    def test_samples_parse_names_labels_values(self):
        samples = parse_samples(EXPOSITION)
        names = {name for name, _, _ in samples}
        assert "other_metric_total" in names
        bucket = next(
            s for s in samples if s[0] == "serve_queue_wait_seconds_bucket"
        )
        assert bucket[1] == {"family": "nsdp", "method": "gpo", "le": "0.01"}
        assert bucket[2] == 2.0

    def test_comments_and_blank_lines_skipped(self):
        assert parse_samples("# HELP x y\n\n# TYPE x counter\n") == []

    def test_histograms_reassemble_series(self):
        histograms = parse_histograms(EXPOSITION)
        key = (
            "serve_queue_wait_seconds",
            (("family", "nsdp"), ("method", "gpo")),
        )
        summary = histograms[key]
        assert summary.count == 4
        assert summary.total == 0.12
        assert summary.buckets[0.01] == 2
        assert summary.buckets[math.inf] == 4
        assert "le" not in summary.labels

    def test_names_filter(self):
        histograms = parse_histograms(
            EXPOSITION, names=["serve_search_seconds"]
        )
        assert {name for name, _ in histograms} == {"serve_search_seconds"}


class TestQuantiles:
    def test_median_interpolates_inside_bucket(self):
        histograms = parse_histograms(EXPOSITION)
        summary = histograms[
            (
                "serve_queue_wait_seconds",
                (("family", "nsdp"), ("method", "gpo")),
            )
        ]
        # rank 2 falls exactly on the 0.01 bucket boundary.
        assert summary.quantile(0.5) == 0.01
        # p75 (rank 3) is halfway through the (0.01, 0.1] bucket.
        assert abs(summary.quantile(0.75) - 0.055) < 1e-9

    def test_inf_bucket_returns_last_finite_bound(self):
        histograms = parse_histograms(EXPOSITION)
        summary = histograms[
            ("serve_search_seconds", (("family", "nsdp"), ("method", "gpo")))
        ]
        assert summary.quantile(0.99) == 1.0

    def test_empty_histogram_is_zero(self):
        histograms = parse_histograms(
            'x_bucket{le="+Inf"} 0\nx_sum 0\nx_count 0\n'
        )
        summary = next(iter(histograms.values()))
        assert summary.quantile(0.5) == 0.0
        assert summary.mean == 0.0


class TestReport:
    def test_report_groups_by_family_method(self):
        report = format_slo(EXPOSITION)
        assert "nsdp" in report
        assert "queue" in report
        assert "search" in report
        # The non-SLO metric never leaks into the report.
        assert "other_metric" not in report

    def test_empty_exposition_says_so(self):
        assert "no serve SLO samples" in format_slo("")

    def test_roundtrip_through_real_registry(self):
        """What the serve layer exports, the report can read back."""
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "serve_search_seconds",
            buckets=(0.1, 1.0),
            method="gpo",
            family="rw",
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        report = format_slo(prometheus_text(registry))
        assert "rw" in report
        assert "search" in report
