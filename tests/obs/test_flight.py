"""Flight recorder: bounded ring semantics and its unconditional feeds."""

import os

import pytest

from repro.obs.context import new_trace_context, use_context
from repro.obs.flight import FLIGHT, FlightRecorder
from repro.obs.tracer import Tracer


@pytest.fixture
def clean_global_flight():
    """Isolate tests that exercise the process-wide singleton."""
    saved = FLIGHT.snapshot()
    FLIGHT.clear()
    try:
        yield FLIGHT
    finally:
        FLIGHT.clear()
        for record in saved:
            FLIGHT.record(record)


class TestRing:
    def test_capacity_evicts_oldest(self):
        ring = FlightRecorder(capacity=3)
        for i in range(5):
            ring.note("tick", i=i)
        snapshot = ring.snapshot()
        assert [r["i"] for r in snapshot] == [2, 3, 4]
        assert ring.recorded == 5  # total seen, not retained
        assert len(ring) == 3

    def test_notes_are_stamped(self):
        ring = FlightRecorder()
        ring.note("boom", detail="x")
        (record,) = ring.snapshot()
        assert record["kind"] == "boom"
        assert record["detail"] == "x"
        assert record["pid"] == os.getpid()
        assert record["ts"] > 0

    def test_snapshot_limit_keeps_newest(self):
        ring = FlightRecorder()
        for i in range(10):
            ring.note("tick", i=i)
        assert [r["i"] for r in ring.snapshot(limit=2)] == [8, 9]

    def test_snapshot_is_a_copy(self):
        ring = FlightRecorder()
        payload = {"kind": "mutable", "n": 1}
        ring.record(payload)
        payload["n"] = 2
        snapshot = ring.snapshot()
        snapshot[0]["n"] = 3
        assert ring.snapshot()[0]["n"] == 1

    def test_configure_resizes_keeping_newest(self):
        ring = FlightRecorder(capacity=10)
        for i in range(10):
            ring.note("tick", i=i)
        ring.configure(4)
        assert ring.capacity == 4
        assert [r["i"] for r in ring.snapshot()] == [6, 7, 8, 9]


class TestFeeds:
    def test_root_spans_feed_the_ring(self, clean_global_flight):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("leaf"):
                pass
        names = [r.get("name") for r in clean_global_flight.snapshot()]
        assert "root" in names
        assert "leaf" not in names  # only roots, never per-state noise

    def test_cross_process_roots_feed_the_ring(self, clean_global_flight):
        """A span parented to *another process's* span is still a local
        root — the flight criterion is process-local parentage."""
        ctx = new_trace_context().child("dead-beef")
        tracer = Tracer()
        with use_context(ctx), tracer.span("worker-root"):
            pass
        names = [r.get("name") for r in clean_global_flight.snapshot()]
        assert "worker-root" in names

    def test_engine_events_feed_the_ring(self, clean_global_flight):
        from types import SimpleNamespace

        from repro.engine.events import NullEventSink

        job = SimpleNamespace(
            label="j", method="gpo", net=SimpleNamespace(name="n")
        )
        # Even the *null* sink feeds the ring: crash dumps stay useful
        # with event logging off.
        NullEventSink().record("queued", job)
        kinds = [r.get("kind") for r in clean_global_flight.snapshot()]
        assert "queued" in kinds
