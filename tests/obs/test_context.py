"""Trace-context propagation: ambient installation, span stamping, take."""

from repro.obs.context import (
    TraceContext,
    current_context,
    new_trace_context,
    new_trace_id,
    set_context,
    use_context,
)
from repro.obs.tracer import Tracer, activate


class TestContextPlumbing:
    def test_ids_are_distinct_hex(self):
        first, second = new_trace_id(), new_trace_id()
        assert first != second
        assert len(first) == 16
        int(first, 16)  # raises if not hex

    def test_child_keeps_trace_reparents(self):
        ctx = TraceContext("abc123", parent_span_id=None)
        child = ctx.child("7f-1")
        assert child.trace_id == "abc123"
        assert child.parent_span_id == "7f-1"
        assert ctx.parent_span_id is None  # frozen original untouched

    def test_use_context_scopes_and_restores(self):
        assert current_context() is None
        outer = new_trace_context()
        with use_context(outer):
            assert current_context() is outer
            inner = new_trace_context()
            with use_context(inner):
                assert current_context() is inner
            assert current_context() is outer
        assert current_context() is None

    def test_set_context_returns_previous(self):
        ctx = new_trace_context()
        previous = set_context(ctx)
        try:
            assert previous is None
            assert current_context() is ctx
        finally:
            set_context(previous)


class TestSpanStamping:
    def test_spans_carry_the_ambient_trace_id(self):
        tracer = Tracer()
        ctx = new_trace_context()
        with use_context(ctx):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        records = tracer.records()
        assert len(records) == 2
        assert {r["trace_id"] for r in records} == {ctx.trace_id}

    def test_no_context_means_no_trace_id(self):
        tracer = Tracer()
        with tracer.span("bare"):
            pass
        assert "trace_id" not in tracer.records()[0]

    def test_root_span_parents_to_context_parent(self):
        """A span with an empty stack adopts ``ctx.parent_span_id`` —
        the cross-process attachment rule for forked workers."""
        tracer = Tracer()
        ctx = TraceContext("feed5eed00000000", parent_span_id="77-9")
        with use_context(ctx):
            with tracer.span("worker-root"):
                with tracer.span("child") as child:
                    pass
        records = {r["name"]: r for r in tracer.records()}
        assert records["worker-root"]["parent_id"] == "77-9"
        # Nested spans parent normally, not to the remote span.
        assert records["child"]["parent_id"] != "77-9"
        assert child.span_id == records["child"]["span_id"]

    def test_span_keeps_creation_time_trace(self):
        """A span started inside the context but finished outside keeps
        the trace id of the request that opened it."""
        tracer = Tracer()
        ctx = new_trace_context()
        with use_context(ctx):
            span = tracer.start("long-lived")
        span.end()
        assert tracer.records()[0]["trace_id"] == ctx.trace_id


class TestTracerTake:
    def test_take_partitions_by_trace(self):
        tracer = Tracer()
        first, second = new_trace_context(), new_trace_context()
        with use_context(first), tracer.span("a"):
            pass
        with use_context(second), tracer.span("b"):
            pass
        taken = tracer.take(first.trace_id)
        assert [r["name"] for r in taken] == ["a"]
        remaining = tracer.records()
        assert [r["name"] for r in remaining] == ["b"]

    def test_take_unknown_trace_is_empty(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        assert tracer.take("0000000000000000") == []
        assert len(tracer.records()) == 1

    def test_current_span_id_tracks_stack(self):
        tracer = Tracer()
        with activate(tracer):
            assert tracer.current_span_id() is None
            with tracer.span("outer") as outer:
                assert tracer.current_span_id() == outer.span_id
                with tracer.span("inner") as inner:
                    assert tracer.current_span_id() == inner.span_id
                assert tracer.current_span_id() == outer.span_id
        assert tracer.current_span_id() is None
