"""Engine-layer observability: job spans, worker-trace merging, events."""

import io
import json
import os

from repro.engine.events import (
    EVENT_SCHEMA_VERSION,
    JobEvent,
    JsonlEventSink,
    read_events,
)
from repro.engine.jobs import Budget, VerificationJob
from repro.engine.pool import run_jobs
from repro.engine.portfolio import run_race
from repro.models import nsdp
from repro.obs import names
from repro.obs.tracer import Tracer, activate


def job(net, method="full"):
    return VerificationJob(
        net=net, method=method, budget=Budget(max_seconds=60.0)
    )


class TestWorkerTraceMerging:
    def test_job_span_emitted_with_status(self):
        tracer = Tracer()
        with activate(tracer):
            (outcome,) = run_jobs([job(nsdp(2))])
        assert outcome.status == "ok"
        job_spans = [
            r for r in tracer.records() if r["name"] == names.SPAN_JOB
        ]
        assert len(job_spans) == 1
        assert job_spans[0]["attrs"]["status"] == "ok"
        assert job_spans[0]["attrs"]["method"] == "full"

    def test_worker_spans_adopted_and_parented_under_job(self):
        tracer = Tracer()
        with activate(tracer):
            run_jobs([job(nsdp(2))])
        records = tracer.records()
        (job_span,) = [r for r in records if r["name"] == names.SPAN_JOB]
        foreign = [r for r in records if r["pid"] != os.getpid()]
        # The forked worker's analyze span came back and nests under the
        # job span the parent opened.
        roots = [
            r
            for r in foreign
            if r["name"] == names.SPAN_ANALYZE
            and r.get("parent_id") == job_span["span_id"]
        ]
        assert len(roots) == 1

    def test_race_span_wraps_job_spans(self):
        tracer = Tracer()
        with activate(tracer):
            outcome = run_race(
                nsdp(2),
                methods=("full", "stubborn"),
                budget=Budget(max_seconds=60.0),
                jobs=1,
            )
        assert outcome.conclusive
        records = tracer.records()
        (race,) = [r for r in records if r["name"] == names.SPAN_RACE]
        assert race["attrs"]["winner"] == outcome.winner.job.method
        job_spans = [r for r in records if r["name"] == names.SPAN_JOB]
        assert job_spans
        assert all(
            r.get("parent_id") == race["span_id"] for r in job_spans
        )

    def test_untraced_run_records_nothing(self):
        (outcome,) = run_jobs([job(nsdp(2))])
        assert outcome.status == "ok"
        from repro.obs.tracer import current_tracer

        assert current_tracer().records() == []


class TestEventSchema:
    def test_payload_carries_schema_version(self):
        event = JobEvent(
            kind="queued", job="n/full", method="full", net="n", timestamp=1.0
        )
        payload = event.payload()
        assert payload["v"] == EVENT_SCHEMA_VERSION
        assert "wall_seconds" not in payload  # None fields omitted

    def test_sink_lines_parse_and_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlEventSink(path) as sink:
            sink.emit(
                JobEvent(
                    kind="finished",
                    job="n/full",
                    method="full",
                    net="n",
                    timestamp=2.0,
                    wall_seconds=0.5,
                )
            )
        raw = json.loads(path.read_text().strip())
        assert raw["v"] == EVENT_SCHEMA_VERSION
        (back,) = read_events(path)
        assert back.kind == "finished"
        assert back.wall_seconds == 0.5

    def test_read_events_tolerates_unknown_keys(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"kind":"queued","job":"j","method":"full","net":"n",'
            '"timestamp":1.0,"v":99,"future_field":true}\n'
        )
        (event,) = read_events(path)
        assert event.kind == "queued"

    def test_sink_and_tracer_share_serializer(self):
        # One serialization code path: the sink's stream writer is the
        # exporters' JsonlWriter, so key ordering and separators match.
        from repro.obs.exporters import JsonlWriter

        stream = io.StringIO()
        sink = JsonlEventSink(stream)
        assert isinstance(sink._writer, JsonlWriter)
        sink.emit(
            JobEvent(
                kind="queued", job="j", method="m", net="n", timestamp=0.0
            )
        )
        line = stream.getvalue()
        assert line.endswith("\n")
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        ) + "\n"
