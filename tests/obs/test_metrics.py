"""Instrument semantics, bucket edges, registry keying, null twins."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
)


class TestCounter:
    def test_increments_accumulate(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("hits")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_same_name_and_labels_is_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", analyzer="gpo")
        b = registry.counter("hits", analyzer="gpo")
        assert a is b
        assert len(registry) == 1

    def test_different_labels_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("hits", analyzer="gpo").inc()
        registry.counter("hits", analyzer="full").inc(5)
        assert registry.value_of("hits", analyzer="gpo") == 1
        assert registry.value_of("hits", analyzer="full") == 5

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", x="1", y="2")
        b = registry.counter("hits", y="2", x="1")
        assert a is b


class TestGauge:
    def test_set_replaces(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3

    def test_set_max_keeps_maximum(self):
        gauge = MetricsRegistry().gauge("peak")
        gauge.set_max(5)
        gauge.set_max(2)
        gauge.set_max(9)
        assert gauge.value == 9


class TestHistogramBuckets:
    def test_observation_equal_to_edge_lands_in_that_bucket(self):
        h = Histogram("h", bounds=(1, 2, 4))
        h.observe(2)
        assert h.counts == [0, 1, 0, 0]

    def test_observation_between_edges_lands_above(self):
        h = Histogram("h", bounds=(1, 2, 4))
        h.observe(3)
        assert h.counts == [0, 0, 1, 0]

    def test_overflow_goes_to_inf_bucket(self):
        h = Histogram("h", bounds=(1, 2, 4))
        h.observe(1000)
        assert h.counts == [0, 0, 0, 1]

    def test_cumulative_counts(self):
        h = Histogram("h", bounds=(1, 2, 4))
        for value in (1, 2, 2, 3, 100):
            h.observe(value)
        assert h.cumulative() == [
            (1.0, 1),
            (2.0, 3),
            (4.0, 4),
            (float("inf"), 5),
        ]

    def test_mean_and_empty_mean(self):
        h = Histogram("h", bounds=(1, 2))
        assert h.mean == 0.0
        h.observe(2)
        h.observe(4)
        assert h.mean == 3.0

    def test_non_increasing_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1, 1, 2))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2, 1))

    def test_default_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))

    def test_custom_buckets_via_registry(self):
        registry = MetricsRegistry()
        h = registry.histogram("sizes", buckets=(10, 20))
        assert h.bounds == (10.0, 20.0)


class TestRegistry:
    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_collect_is_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a", k="2")
        registry.counter("a", k="1")
        names = [(i.name, i.labels) for i in registry.collect()]
        assert names == sorted(names)
        assert len(names) == 3

    def test_value_of_missing_is_none(self):
        assert MetricsRegistry().value_of("nope") is None


class TestNullMetrics:
    def test_instruments_discard_everything(self):
        counter = NULL_METRICS.counter("x")
        counter.inc(100)
        assert counter.value == 0
        gauge = NULL_METRICS.gauge("y")
        gauge.set(5)
        gauge.set_max(9)
        assert gauge.value == 0
        histogram = NULL_METRICS.histogram("z")
        histogram.observe(3)
        assert histogram.count == 0

    def test_collect_is_empty(self):
        assert list(NULL_METRICS.collect()) == []
        assert len(NULL_METRICS) == 0

    def test_instruments_are_shared_singletons(self):
        assert NULL_METRICS.counter("a") is NULL_METRICS.counter("b")
