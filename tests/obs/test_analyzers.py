"""Cross-analyzer observability contract.

Every analyzer — full, stubborn, gpo, symbolic, timed, unfolding — must,
when a tracer is active:

* emit exactly one root ``analyze`` span carrying the canonical
  ``analyzer`` / ``net`` attributes;
* publish a ``states_expanded`` counter and ``peak_frontier`` gauge whose
  values match the returned :class:`AnalysisResult` exactly.
"""

import pytest

from repro.analysis import analyze as full_analyze
from repro.gpo import analyze as gpo_analyze
from repro.models import nsdp, rw
from repro.obs import names
from repro.obs.record import record_result
from repro.obs.summary import build_summary
from repro.obs.tracer import Tracer, activate
from repro.stubborn import analyze as stubborn_analyze
from repro.symbolic import analyze as symbolic_analyze
from repro.timed.tpn import TimedPetriNet
from repro.unfolding import analyze as unfolding_analyze


def timed_analyze_skeleton(net, **kwargs):
    from repro.timed import analyze as timed_analyze

    tpn = TimedPetriNet(net, [(0, None)] * net.num_transitions)
    return timed_analyze(tpn)


ANALYZE_FNS = {
    "full": full_analyze,
    "stubborn": stubborn_analyze,
    "gpo": gpo_analyze,
    "symbolic": symbolic_analyze,
    "timed": timed_analyze_skeleton,
    "unfolding": unfolding_analyze,
}


@pytest.mark.parametrize("analyzer", sorted(ANALYZE_FNS))
@pytest.mark.parametrize("family,size", [("nsdp", 2), ("rw", 3)])
def test_canonical_root_span_and_metrics(analyzer, family, size):
    net = {"nsdp": nsdp, "rw": rw}[family](size)
    tracer = Tracer()
    with activate(tracer):
        result = ANALYZE_FNS[analyzer](net)

    roots = [
        r
        for r in tracer.records()
        if r["name"] == names.SPAN_ANALYZE and "parent_id" not in r
    ]
    assert len(roots) == 1
    root = roots[0]
    assert root["attrs"]["analyzer"] == result.analyzer
    assert root["attrs"]["net"] == net.name
    assert root["dur_ns"] > 0

    labels = {"analyzer": result.analyzer, "net": result.net_name}
    metrics = tracer.metrics
    assert (
        metrics.value_of(names.STATES_EXPANDED, **labels) == result.expanded
    )
    assert (
        metrics.value_of(names.PEAK_FRONTIER, **labels)
        == result.peak_frontier
    )
    assert metrics.value_of(names.ANALYSIS_STATES, **labels) == result.states


@pytest.mark.parametrize("analyzer", sorted(ANALYZE_FNS))
def test_summary_root_identity(analyzer):
    """Root wall time equals the sum of direct children plus self time."""
    net = nsdp(2)
    tracer = Tracer()
    with activate(tracer):
        ANALYZE_FNS[analyzer](net)
    root = build_summary(tracer.records())[0]
    children = sum(c.total_ns for c in root.children.values())
    assert root.total_ns == children + root.self_ns


def test_disabled_tracer_records_nothing():
    net = nsdp(2)
    result = gpo_analyze(net)  # ambient tracer is NULL_TRACER
    assert result is not None
    from repro.obs.tracer import current_tracer

    assert current_tracer().records() == []


def test_deadlock_metric_counts_verdicts():
    tracer = Tracer()
    with activate(tracer):
        result = full_analyze(nsdp(2))
    labels = {"analyzer": "full", "net": result.net_name}
    recorded = tracer.metrics.value_of(names.DEADLOCKS, **labels)
    if result.deadlock:
        assert recorded == 1
    else:
        assert recorded is None


def test_record_result_is_explicit_choke_point():
    """record_result against an explicit registry, independent of tracing."""
    from repro.analysis.stats import AnalysisResult
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    result = AnalysisResult(
        analyzer="full",
        net_name="toy",
        states=10,
        edges=9,
        deadlock=True,
        time_seconds=0.5,
        extras={names.EXPANDED: 8, names.PEAK_FRONTIER: 4},
    )
    record_result(result, registry)
    labels = {"analyzer": "full", "net": "toy"}
    assert registry.value_of(names.STATES_EXPANDED, **labels) == 8
    assert registry.value_of(names.PEAK_FRONTIER, **labels) == 4
    assert registry.value_of(names.ANALYSIS_STATES, **labels) == 10
    assert registry.value_of(names.ANALYSIS_EDGES, **labels) == 9
    assert registry.value_of(names.DEADLOCKS, **labels) == 1


def test_stubborn_set_size_histogram_populated():
    tracer = Tracer()
    with activate(tracer):
        stubborn_analyze(nsdp(2))
    histograms = [
        i
        for i in tracer.metrics.collect()
        if i.name == names.STUBBORN_SET_SIZE
    ]
    assert histograms and histograms[0].count > 0


def test_scenario_set_size_histogram_populated():
    tracer = Tracer()
    with activate(tracer):
        gpo_analyze(nsdp(2))
    histograms = [
        i
        for i in tracer.metrics.collect()
        if i.name == names.SCENARIO_SET_SIZE
    ]
    assert histograms and histograms[0].count > 0


def test_symbolic_bdd_gauges_populated():
    tracer = Tracer()
    with activate(tracer):
        result = symbolic_analyze(nsdp(2))
    labels = {"analyzer": "symbolic", "net": result.net_name}
    peak = tracer.metrics.value_of(names.BDD_PEAK_NODES, **labels)
    ratio = tracer.metrics.value_of(names.BDD_CACHE_HIT_RATIO, **labels)
    assert peak == result.extras["peak_bdd_nodes"]
    assert ratio is not None and 0.0 <= ratio <= 1.0
