"""Exporter golden files: JSONL, Chrome trace_event, Prometheus text."""

import io
import json

from repro.obs.exporters import (
    JsonlWriter,
    chrome_trace,
    prometheus_text,
    write_chrome_trace,
    write_jsonl_trace,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry

#: Deterministic synthetic span records (the tracer's record schema).
RECORDS = [
    {
        "kind": "span",
        "v": 1,
        "name": "analyze",
        "span_id": "aa-1",
        "pid": 7,
        "tid": 1,
        "start_ns": 1_000_000,
        "dur_ns": 3_000_000,
        "attrs": {"analyzer": "gpo", "states": 12},
    },
    {
        "kind": "span",
        "v": 1,
        "name": "search",
        "span_id": "aa-2",
        "parent_id": "aa-1",
        "pid": 7,
        "tid": 1,
        "start_ns": 2_000_000,
        "dur_ns": 1_500_000,
    },
    {
        "kind": "span",
        "v": 1,
        "name": "marker",
        "span_id": "aa-3",
        "parent_id": "aa-1",
        "pid": 7,
        "tid": 1,
        "start_ns": 2_500_000,
        "dur_ns": 0,
    },
]


def golden_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("states_expanded", analyzer="gpo").inc(12)
    registry.gauge("peak_frontier", analyzer="gpo").set(3)
    histogram = registry.histogram("set_size", buckets=(1, 2, 4))
    for value in (1, 3, 100):
        histogram.observe(value)
    return registry


class TestJsonl:
    def test_writer_emits_sorted_compact_lines(self):
        stream = io.StringIO()
        JsonlWriter(stream).write({"b": 2, "a": 1})
        assert stream.getvalue() == '{"a":1,"b":2}\n'

    def test_round_trip_through_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        count = write_jsonl_trace(path, RECORDS)
        assert count == len(RECORDS)
        with open(path, encoding="utf-8") as handle:
            back = [json.loads(line) for line in handle]
        assert back == RECORDS


class TestChromeTrace:
    def test_golden_structure(self):
        payload = chrome_trace(RECORDS)
        assert payload == {
            "traceEvents": [
                {
                    "name": "analyze",
                    "ts": 0.0,
                    "pid": 7,
                    "tid": 1,
                    "ph": "X",
                    "dur": 3000.0,
                    "args": {
                        "analyzer": "gpo",
                        "states": 12,
                        "span_id": "aa-1",
                    },
                },
                {
                    "name": "search",
                    "ts": 1000.0,
                    "pid": 7,
                    "tid": 1,
                    "ph": "X",
                    "dur": 1500.0,
                    "args": {"parent_id": "aa-1", "span_id": "aa-2"},
                },
                {
                    "name": "marker",
                    "ts": 1500.0,
                    "pid": 7,
                    "tid": 1,
                    "ph": "i",
                    "s": "t",
                    "args": {"parent_id": "aa-1", "span_id": "aa-3"},
                },
            ],
            "displayTimeUnit": "ms",
        }

    def test_file_round_trips_through_json_load(self, tmp_path):
        path = str(tmp_path / "trace.json")
        count = write_chrome_trace(path, RECORDS)
        assert count == 3
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload == chrome_trace(RECORDS)

    def test_empty_records(self):
        assert chrome_trace([]) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }


class TestPrometheus:
    GOLDEN = (
        "# TYPE peak_frontier gauge\n"
        'peak_frontier{analyzer="gpo"} 3\n'
        "# TYPE set_size histogram\n"
        'set_size_bucket{le="1"} 1\n'
        'set_size_bucket{le="2"} 1\n'
        'set_size_bucket{le="4"} 2\n'
        'set_size_bucket{le="+Inf"} 3\n'
        "set_size_sum 104\n"
        "set_size_count 3\n"
        "# TYPE states_expanded counter\n"
        'states_expanded{analyzer="gpo"} 12\n'
    )

    def test_golden_text(self):
        assert prometheus_text(golden_registry()) == self.GOLDEN

    def test_empty_registry_is_empty_text(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_write_returns_line_count(self, tmp_path):
        path = str(tmp_path / "metrics.prom")
        count = write_prometheus(path, golden_registry())
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == self.GOLDEN
        assert count == self.GOLDEN.count("\n")

    def test_type_line_emitted_once_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("hits", analyzer="gpo").inc()
        registry.counter("hits", analyzer="full").inc()
        text = prometheus_text(registry)
        assert text.count("# TYPE hits counter") == 1

    def test_float_values_keep_precision(self):
        registry = MetricsRegistry()
        registry.gauge("ratio").set(0.8125)
        assert "ratio 0.8125" in prometheus_text(registry)
