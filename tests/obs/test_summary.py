"""Summary-tree invariants: aggregation, self time, the root identity."""

from repro.obs.summary import build_summary, format_summary, hot_spans
from repro.obs.tracer import Tracer


def record(span_id, name, dur_ns, parent_id=None):
    out = {
        "kind": "span",
        "v": 1,
        "name": name,
        "span_id": span_id,
        "pid": 1,
        "tid": 1,
        "start_ns": 0,
        "dur_ns": dur_ns,
    }
    if parent_id is not None:
        out["parent_id"] = parent_id
    return out


class TestBuildSummary:
    def test_siblings_with_same_name_aggregate(self):
        records = [
            record("r", "analyze", 100),
            record("a", "step", 30, parent_id="r"),
            record("b", "step", 20, parent_id="r"),
        ]
        (root,) = build_summary(records)
        assert root.name == "analyze"
        step = root.children["step"]
        assert step.count == 2
        assert step.total_ns == 50

    def test_same_name_under_distinct_parents_stays_separate(self):
        records = [
            record("r", "analyze", 100),
            record("x", "phase", 60, parent_id="r"),
            record("y", "phase", 30, parent_id="r"),
            record("x1", "work", 10, parent_id="x"),
            record("y1", "work", 5, parent_id="y"),
        ]
        (root,) = build_summary(records)
        phase = root.children["phase"]
        # Both phases aggregate; their ``work`` children merge under the
        # shared aggregate node.
        assert phase.count == 2
        assert phase.children["work"].count == 2
        assert phase.children["work"].total_ns == 15

    def test_root_total_equals_children_plus_self(self):
        records = [
            record("r", "analyze", 100),
            record("a", "search", 60, parent_id="r"),
            record("b", "certificate", 25, parent_id="r"),
        ]
        (root,) = build_summary(records)
        children = sum(c.total_ns for c in root.children.values())
        assert root.total_ns == children + root.self_ns
        assert root.self_ns == 15

    def test_self_time_clamped_at_zero(self):
        # Overlapping children can sum past the parent (concurrent engine
        # jobs); self time must not go negative.
        records = [
            record("r", "race", 100),
            record("a", "job", 80, parent_id="r"),
            record("b", "job", 80, parent_id="r"),
        ]
        (root,) = build_summary(records)
        assert root.self_ns == 0

    def test_orphan_parent_id_becomes_root(self):
        records = [record("a", "lost", 10, parent_id="never-recorded")]
        (root,) = build_summary(records)
        assert root.name == "lost"

    def test_real_tracer_satisfies_root_identity(self):
        tracer = Tracer()
        with tracer.span("analyze"):
            with tracer.span("search"):
                for _ in range(3):
                    with tracer.span("step"):
                        pass
            with tracer.span("witness"):
                pass
        (root,) = build_summary(tracer.records())
        children = sum(c.total_ns for c in root.children.values())
        assert root.total_ns == children + root.self_ns


class TestHotSpans:
    def test_ordered_by_self_time(self):
        records = [
            record("r", "analyze", 100),
            record("a", "search", 70, parent_id="r"),
            record("a1", "inner", 10, parent_id="a"),
        ]
        roots = build_summary(records)
        hot = hot_spans(roots, top=2)
        assert hot[0] == ("search", 60, 1)
        assert hot[1] == ("analyze", 30, 1)

    def test_top_limits_rows(self):
        records = [
            record("r", "analyze", 100),
            record("a", "x", 10, parent_id="r"),
            record("b", "y", 10, parent_id="r"),
        ]
        assert len(hot_spans(build_summary(records), top=1)) == 1


class TestFormatSummary:
    def test_contains_tree_rows_and_counts(self):
        records = [
            record("r", "analyze", 2_000_000),
            record("a", "step", 500_000, parent_id="r"),
            record("b", "step", 500_000, parent_id="r"),
        ]
        text = format_summary(records)
        assert "analyze" in text
        assert "step x2" in text
        assert "100.0%" in text

    def test_empty_records(self):
        assert "(no spans recorded)" in format_summary([])

    def test_metrics_digest_appended(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("states_expanded", analyzer="gpo").inc(42)
        text = format_summary(
            [record("r", "analyze", 1_000_000)], metrics=registry
        )
        assert "metrics:" in text
        assert "states_expanded{analyzer=gpo}  42" in text
