"""Span lifecycle: nesting, timing invariants, cross-process merging."""

import threading

from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    activate,
    current_tracer,
    set_tracer,
)


def by_id(records):
    return {r["span_id"]: r for r in records}


class TestNesting:
    def test_with_blocks_nest(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        records = by_id(tracer.records())
        assert records[inner.span_id]["parent_id"] == outer.span_id
        assert "parent_id" not in records[outer.span_id]

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        records = by_id(tracer.records())
        assert records[a.span_id]["parent_id"] == root.span_id
        assert records[b.span_id]["parent_id"] == root.span_id

    def test_free_span_parents_but_does_not_stack(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            free = tracer.start("job")
            with tracer.span("nested") as nested:
                pass
            free.end()
        records = by_id(tracer.records())
        assert records[free.span_id]["parent_id"] == root.span_id
        # The free span was never the innermost: ``nested`` skips it.
        assert records[nested.span_id]["parent_id"] == root.span_id

    def test_attach_makes_free_span_innermost(self):
        tracer = Tracer()
        free = tracer.start("job")
        with tracer.attach(free):
            with tracer.span("child") as child:
                pass
        free.end()
        records = by_id(tracer.records())
        assert records[child.span_id]["parent_id"] == free.span_id

    def test_close_tolerates_out_of_order_exit(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        tracer.span("inner")  # never closed explicitly
        outer.close()
        with tracer.span("after") as after:
            pass
        # The stack recovered: ``after`` is a root span, not a child of
        # the leaked ``inner``.
        assert "parent_id" not in by_id(tracer.records())[after.span_id]

    def test_threads_have_independent_stacks(self):
        tracer = Tracer()
        spans = {}

        def worker():
            with tracer.span("thread-root") as s:
                spans["thread"] = s

        with tracer.span("main-root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        record = by_id(tracer.records())[spans["thread"].span_id]
        assert "parent_id" not in record


class TestTiming:
    def test_duration_nonnegative_and_contained(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.duration_ns >= 0
        assert outer.start_ns <= inner.start_ns
        assert inner.end_ns <= outer.end_ns
        assert inner.duration_ns <= outer.duration_ns

    def test_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.start("once")
        span.end()
        first = span.end_ns
        span.end()
        assert span.end_ns == first
        assert len(tracer.records()) == 1

    def test_open_span_reports_zero_duration(self):
        tracer = Tracer()
        span = tracer.start("open")
        assert span.duration_ns == 0
        span.end()


class TestAttributes:
    def test_set_and_close_attrs_merge(self):
        tracer = Tracer()
        with tracer.span("s", a=1) as span:
            span.set(b=2)
        record = tracer.records()[0]
        assert record["attrs"] == {"a": 1, "b": 2}

    def test_non_plain_values_stringified(self):
        tracer = Tracer()
        with tracer.span("s", obj=frozenset({1})):
            pass
        value = tracer.records()[0]["attrs"]["obj"]
        assert isinstance(value, str)

    def test_event_is_instant(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            tracer.event("marker", n=3)
        records = tracer.records()
        instant = next(r for r in records if r["name"] == "marker")
        assert instant["dur_ns"] == 0
        assert instant["parent_id"] == root.span_id


class TestMerging:
    def test_drain_then_adopt_round_trips(self):
        child = Tracer()
        with child.span("worker"):
            pass
        shipped = child.drain()
        assert child.records() == []
        parent = Tracer()
        parent.adopt(shipped)
        assert [r["name"] for r in parent.records()] == ["worker"]

    def test_child_reset_drops_inherited_records(self):
        tracer = Tracer()
        with tracer.span("parent-era"):
            pass
        tracer.child_reset()
        assert tracer.records() == []

    def test_max_spans_overflow_is_counted_not_raised(self):
        tracer = Tracer(max_spans=2)
        for i in range(5):
            tracer.start(f"s{i}").end()
        assert len(tracer.records()) == 2
        assert tracer.dropped == 3

    def test_span_ids_embed_pid_and_are_unique(self):
        tracer = Tracer()
        ids = set()
        import os

        for _ in range(100):
            span = tracer.start("x")
            span.end()
            assert span.span_id.startswith(f"{os.getpid():x}-")
            ids.add(span.span_id)
        assert len(ids) == 100


class TestAmbient:
    def test_default_is_null(self):
        assert isinstance(current_tracer(), NullTracer)

    def test_activate_restores_previous(self):
        tracer = Tracer()
        before = current_tracer()
        with activate(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is before

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert current_tracer() is tracer
        finally:
            set_tracer(previous)


class TestNullTracer:
    def test_span_returns_shared_null_span(self):
        assert NULL_TRACER.span("anything", a=1) is NULL_SPAN
        assert NULL_TRACER.start("anything") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_TRACER.span("x") as span:
            span.set(a=1)
            span.end()
            span.close(b=2)
        assert NULL_TRACER.records() == []

    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_noop_overhead_smoke(self):
        # The disabled path must stay allocation-free and cheap: a very
        # generous bound that still catches accidentally instantiating
        # real spans on the null path.
        import time

        n = 50_000
        start = time.perf_counter()
        for _ in range(n):
            with NULL_TRACER.span("hot"):
                pass
        per_call = (time.perf_counter() - start) / n
        assert per_call < 20e-6

    def test_records_are_json_plain(self):
        tracer = Tracer()
        with tracer.span("s", n=1, f=0.5, b=True, none=None, text="t"):
            pass
        record = tracer.records()[0]
        assert isinstance(record["span_id"], str)
        for value in record["attrs"].values():
            assert isinstance(value, (str, int, float, bool, type(None)))

    def test_span_repr_mentions_state(self):
        tracer = Tracer()
        span = tracer.start("named")
        assert "open" in repr(span)
        span.end()
        assert "ns" in repr(span)
        assert isinstance(span, Span)
