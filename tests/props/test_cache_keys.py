"""Property-aware cache keys: variants share, questions never collide."""

from __future__ import annotations

from repro.engine.cache import ResultCache
from repro.engine.jobs import Budget, VerificationJob, execute_job, query_token
from repro.engine.portfolio import run_race
from repro.models import nsdp

BUDGET = Budget(max_states=30_000, max_seconds=30.0)


def _job(query: str, method: str = "full") -> VerificationJob:
    return VerificationJob(
        net=nsdp(3), method=method, budget=BUDGET, query=query
    )


class TestKeyMaterial:
    def test_distinct_properties_distinct_keys(self):
        keys = {
            _job(q).cache_key_material()
            for q in (
                "deadlock",
                "reachable(eat0)",
                "reachable(eat1)",
                "invariant(!(eat0 & eat1))",
            )
        }
        assert len(keys) == 4

    def test_semantic_variants_share_a_key(self):
        assert (
            _job("reachable(eat0 & eat1)").cache_key_material()
            == _job("reachable(eat1 & eat0)").cache_key_material()
        )
        assert (
            _job("deadlock").cache_key_material()
            == _job("!!deadlock").cache_key_material()
        )

    def test_key_is_versioned_and_property_stamped(self):
        material = _job("reachable(eat0)").cache_key_material()
        assert material.startswith("v2\n")
        assert f"property={query_token('reachable(eat0)')}" in material

    def test_unparseable_query_still_has_a_total_token(self):
        assert query_token("reachable(").startswith("raw:")


class TestCacheBehaviour:
    def test_two_queries_two_entries_then_warm_hits(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        job_reach = _job("reachable(eat0)")
        job_dead = _job("deadlock")

        cache.put(job_reach, execute_job(job_reach))
        assert cache.get(job_dead) is None  # different question, no entry
        cache.put(job_dead, execute_job(job_dead))

        reach_hit = cache.get(job_reach)
        dead_hit = cache.get(job_dead)
        assert reach_hit is not None and dead_hit is not None
        assert reach_hit.property_holds is True
        assert dead_hit.property_text is None and dead_hit.deadlock

    def test_textual_variant_is_a_warm_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        job = _job("reachable(eat0 & eat1)")
        cache.put(job, execute_job(job))
        assert cache.get(_job("reachable(eat1 & eat0)")) is not None

    def test_race_repeat_serves_from_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        kwargs = dict(
            methods=("full",),
            budget=BUDGET,
            jobs=1,
            cache=cache,
            query="reachable(eat0)",
        )
        cold = run_race(nsdp(3), **kwargs)
        warm = run_race(nsdp(3), **kwargs)
        assert cold.winner is not None and cold.winner.status == "ok"
        assert warm.winner is not None and warm.winner.status == "cached"
        assert (
            warm.winner.result.property_holds
            == cold.winner.result.property_holds
            is True
        )
