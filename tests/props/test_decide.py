"""The planner: structural fast path, decomposition, compat drops."""

from __future__ import annotations

import pytest

from repro.engine.jobs import Budget
from repro.models import nsdp
from repro.props.ast import PropertyError
from repro.props.decide import Decision, decide

BUDGET = Budget(max_states=30_000, max_seconds=30.0)


class TestStructuralFastPath:
    def test_mutex_refuted_without_exploration(self):
        decision = decide(nsdp(3), "reachable(eat0 & eat1)", budget=BUDGET)
        assert decision.holds is False
        assert decision.result.analyzer == "static"
        assert decision.result.states == 0

    def test_mutex_invariant_proved_without_exploration(self):
        decision = decide(nsdp(3), "invariant(!(eat0 & eat1))", budget=BUDGET)
        assert decision.holds is True
        assert decision.result.states == 0

    def test_safety_by_certificate(self):
        decision = decide(nsdp(3), "safe", budget=BUDGET)
        assert decision.holds is True
        assert decision.result.analyzer in ("static", "safety-walk")

    def test_no_static_forces_the_engine(self):
        decision = decide(
            nsdp(3), "reachable(eat0)", budget=BUDGET, use_static=False
        )
        assert decision.holds is True
        assert decision.result.analyzer != "static"
        assert decision.result.states > 0


class TestPlanner:
    def test_deadlock_question(self):
        decision = decide(nsdp(3), "deadlock", budget=BUDGET)
        assert decision.holds is True
        assert decision.conclusive

    def test_compound_short_circuits(self):
        # reachable(eat0) is true, so the conjunction reduces to deadlock.
        decision = decide(
            nsdp(3), "reachable(eat0) & !deadlock", budget=BUDGET
        )
        assert decision.holds is False

    def test_incompatible_methods_are_dropped_with_reason(self):
        decision = decide(
            nsdp(3),
            "reachable(eat0)",
            methods=("stubborn", "symbolic"),
            budget=BUDGET,
            use_static=False,
        )
        assert decision.holds is True
        dropped = dict(decision.dropped)
        assert "stubborn" in dropped
        assert "deadlock" in dropped["stubborn"]

    def test_describe_mentions_property_and_drops(self):
        decision = decide(
            nsdp(3),
            "reachable(eat0)",
            methods=("stubborn", "symbolic"),
            budget=BUDGET,
            use_static=False,
        )
        text = decision.describe()
        assert "property: reachable(eat0)" in text
        assert "[compat] stubborn dropped" in text

    def test_unknown_place_raises(self):
        with pytest.raises(PropertyError):
            decide(nsdp(3), "reachable(nope)", budget=BUDGET)

    def test_malformed_raises(self):
        with pytest.raises(PropertyError):
            decide(nsdp(3), "reachable(", budget=BUDGET)

    def test_decision_is_a_dataclass_with_three_valued_holds(self):
        decision = decide(nsdp(2), "true", budget=BUDGET)
        assert isinstance(decision, Decision)
        assert decision.holds is True
        decision = decide(nsdp(2), "false", budget=BUDGET)
        assert decision.holds is False
