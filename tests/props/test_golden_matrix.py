"""Cross-analyzer golden matrix on the Table 1 families.

Two guarantees pin the property layer to the historical behaviour:

* **Legacy parity** — the ``"deadlock"`` query takes the pre-property
  analyzer path byte-for-byte: same verdict fields, no property extras;
* **Cross-analyzer agreement** — every analyzer that accepts a property
  and answers conclusively must give the same answer, with the
  preservation matrix governing who may answer at all (stubborn refuses
  non-deadlock questions, GPO's clean screens stay inconclusive), and
  the old special-purpose flags (``check_safe``, ``find_state``) must
  agree with the property verdicts that subsume them.
"""

from __future__ import annotations

import pytest

from repro.analysis.reachability import MarkingSpace, analyze as full_analyze
from repro.engine.jobs import ANALYZERS, Budget, VerificationJob, execute_job
from repro.harness.table1 import PROBLEMS
from repro.net.validation import check_safe
from repro.props.ast import UnsupportedPropertyError
from repro.props.decide import decide
from repro.props.normalize import canonical_text
from repro.props.parse import parse_property
from repro.search.query import find_state
from repro.stubborn.explorer import analyze as stubborn_analyze
from repro.symbolic.reach import analyze as symbolic_analyze
from repro.unfolding.analysis import analyze as unfolding_analyze

BUDGET = {"max_states": 30_000, "max_seconds": 30.0}

#: One instance per Table 1 family, small enough for every analyzer.
INSTANCES = [("NSDP", 3), ("ASAT", 2), ("OVER", 2), ("RW", 6)]

#: Per-family property questions over stable index-0 place names.
MATRIX = {
    "NSDP": ["reachable(eat0)", "reachable(eat0 & eat1)",
             "invariant(!(eat0 & eat1))"],
    "ASAT": ["reachable(use0)", "invariant(!(use0 & use1))"],
    "OVER": ["reachable(passing0)", "reachable(passing0 & passing1)"],
    "RW": ["reachable(writing0)", "invariant(!(writing0 & reading0))"],
}


def _net(family: str, size: int):
    return PROBLEMS[family](size)


class TestLegacyDeadlockParity:
    @pytest.mark.parametrize("family,size", INSTANCES)
    @pytest.mark.parametrize("method", sorted(ANALYZERS))
    def test_deadlock_query_is_the_legacy_path(self, family, size, method):
        net = _net(family, size)
        budget = Budget(**BUDGET)
        legacy = execute_job(
            VerificationJob(net=net, method=method, budget=budget)
        )
        viaprop = execute_job(
            VerificationJob(
                net=net, method=method, budget=budget, query="deadlock"
            )
        )
        assert viaprop.deadlock == legacy.deadlock
        assert viaprop.exhaustive == legacy.exhaustive
        assert viaprop.states == legacy.states
        assert viaprop.edges == legacy.edges
        assert "property" not in viaprop.extras
        assert "property" not in legacy.extras


class TestCrossAnalyzerAgreement:
    @pytest.mark.parametrize(
        "family,size,text",
        [
            (family, size, text)
            for family, size in INSTANCES
            for text in MATRIX[family]
        ],
    )
    def test_conclusive_analyzers_agree(self, family, size, text):
        net = _net(family, size)
        prop = parse_property(text)
        verdicts = {}
        for name, analyze in [
            ("full", full_analyze),
            ("symbolic", symbolic_analyze),
            ("gpo", ANALYZERS["gpo"]),
            ("unfolding", unfolding_analyze),
        ]:
            kwargs = (
                {"max_events": 2_000}
                if name == "unfolding"
                else {"max_seconds": 30.0}
                if name == "symbolic"
                else dict(BUDGET)
            )
            result = analyze(net, prop=prop, **kwargs)
            assert result.property_text == canonical_text(prop)
            verdicts[name] = result.property_holds
        # Exact deciders must be conclusive on these small instances and
        # unanimous; screen-only analyzers may only add agreeing hits.
        exact = {verdicts["full"], verdicts["symbolic"], verdicts["unfolding"]}
        assert len(exact) == 1 and None not in exact, verdicts
        if verdicts["gpo"] is not None:
            assert verdicts["gpo"] == verdicts["full"], verdicts

    @pytest.mark.parametrize("family,size", INSTANCES)
    def test_stubborn_refuses_non_deadlock(self, family, size):
        net = _net(family, size)
        text = MATRIX[family][0]
        with pytest.raises(UnsupportedPropertyError):
            stubborn_analyze(net, prop=text, **BUDGET)


class TestOldFlagEquivalence:
    @pytest.mark.parametrize("family,size", INSTANCES)
    def test_check_safe_matches_safe_property(self, family, size):
        net = _net(family, size)
        verdict = check_safe(net, max_states=BUDGET["max_states"])
        decision = decide(net, "safe", budget=Budget(**BUDGET))
        assert verdict.status == "safe"
        assert decision.holds is True

    @pytest.mark.parametrize(
        "family,size,text",
        [
            (family, size, text)
            for family, size in INSTANCES
            for text in MATRIX[family]
            if text.startswith("reachable(")
        ],
    )
    def test_find_state_matches_reachable_property(self, family, size, text):
        net = _net(family, size)
        prop = parse_property(text)
        result = full_analyze(net, prop=prop, **BUDGET)
        assert result.property_holds is not None

        from repro.props.compile import predicate_fn

        hit = predicate_fn(net, prop.pred)
        search = find_state(
            MarkingSpace(net),
            lambda marking: hit(net.marking_names(marking)),
            max_states=BUDGET["max_states"],
        )
        assert search.reached == result.property_holds
        if result.property_holds:
            assert result.witness is not None
            assert search.trace is not None
