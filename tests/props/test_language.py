"""Property-language laws: round trips, normalization, hashing.

The grammar, printer and normalizer are exercised with hypothesis over
randomly generated ASTs: ``parse(print(p)) == p``, normalization is
idempotent and semantics-preserving (under the 1-safe token-count
contract ``Bound`` folding assumes), and the canonical hash identifies
exactly the semantic-equality classes the cache relies on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.props.ast import (
    And,
    Bottom,
    Bound,
    Deadlock,
    Invariant,
    Marked,
    Not,
    Or,
    Predicate,
    PropAnd,
    Property,
    PropertyError,
    PropFalse,
    PropNot,
    PropOr,
    PropTrue,
    Reachable,
    Safe,
    Top,
)
from repro.props.normalize import (
    canonical_text,
    normalize,
    normalize_predicate,
    property_hash,
)
from repro.props.parse import parse_predicate, parse_property

PLACES = ("a", "b", "c", "d")

_SETTINGS = settings(max_examples=120, deadline=None)


def _nary(cls):
    return lambda ops: cls(tuple(ops))


_pred_base = st.one_of(
    st.just(Top()),
    st.just(Bottom()),
    st.sampled_from(PLACES).map(Marked),
    st.builds(
        Bound,
        place=st.sampled_from(PLACES),
        op=st.sampled_from(("<=", ">=", "=")),
        k=st.integers(min_value=0, max_value=2),
    ),
)

predicates = st.recursive(
    _pred_base,
    lambda children: st.one_of(
        children.map(Not),
        st.lists(children, min_size=2, max_size=3).map(_nary(And)),
        st.lists(children, min_size=2, max_size=3).map(_nary(Or)),
    ),
    max_leaves=8,
)

_prop_base = st.one_of(
    st.just(Deadlock()),
    st.just(PropTrue()),
    st.just(PropFalse()),
    st.just(Invariant(Safe())),
    predicates.map(Reachable),
    predicates.map(Invariant),
)

properties = st.recursive(
    _prop_base,
    lambda children: st.one_of(
        children.map(PropNot),
        st.lists(children, min_size=2, max_size=3).map(_nary(PropAnd)),
        st.lists(children, min_size=2, max_size=3).map(_nary(PropOr)),
    ),
    max_leaves=6,
)


def _eval_pred(pred: Predicate, marked: frozenset[str]) -> bool:
    """Reference 1-safe semantics: token counts are 0 or 1."""
    if isinstance(pred, Top):
        return True
    if isinstance(pred, Bottom):
        return False
    if isinstance(pred, Marked):
        return pred.place in marked
    if isinstance(pred, Bound):
        count = 1 if pred.place in marked else 0
        return {
            "<=": count <= pred.k,
            ">=": count >= pred.k,
            "=": count == pred.k,
        }[pred.op]
    if isinstance(pred, Not):
        return not _eval_pred(pred.operand, marked)
    if isinstance(pred, And):
        return all(_eval_pred(op, marked) for op in pred.operands)
    if isinstance(pred, Or):
        return any(_eval_pred(op, marked) for op in pred.operands)
    raise AssertionError(f"unhandled predicate {pred!r}")


class TestRoundTrip:
    @_SETTINGS
    @given(prop=properties)
    def test_parse_print_parse_identity(self, prop: Property):
        assert parse_property(prop.text()) == prop

    @_SETTINGS
    @given(pred=predicates)
    def test_predicate_parse_print_identity(self, pred: Predicate):
        assert parse_predicate(pred.text()) == pred

    @_SETTINGS
    @given(prop=properties)
    def test_canonical_text_parses_to_normal_form(self, prop: Property):
        assert parse_property(canonical_text(prop)) == normalize(prop)


class TestNormalize:
    @_SETTINGS
    @given(prop=properties)
    def test_idempotent(self, prop: Property):
        once = normalize(prop)
        assert normalize(once) == once

    @_SETTINGS
    @given(
        pred=predicates,
        marked=st.sets(st.sampled_from(PLACES)).map(frozenset),
    )
    def test_predicate_semantics_preserved(self, pred, marked):
        assert _eval_pred(normalize_predicate(pred), marked) == _eval_pred(
            pred, marked
        )

    @_SETTINGS
    @given(prop=properties)
    def test_hash_is_canonical_text_class(self, prop: Property):
        assert property_hash(prop) == property_hash(normalize(prop))

    def test_commuted_variants_share_hash(self):
        pairs = [
            ("reachable(a & b)", "reachable(b & a)"),
            ("reachable(a) | deadlock", "deadlock | reachable(a)"),
            ("invariant(!(a & b))", "invariant(!b | !a)"),
            ("reachable(a >= 1)", "reachable(a)"),
            ("!!deadlock", "deadlock"),
        ]
        for left, right in pairs:
            assert property_hash(parse_property(left)) == property_hash(
                parse_property(right)
            ), (left, right)

    def test_distinct_questions_hash_apart(self):
        texts = [
            "deadlock",
            "!deadlock",
            "reachable(a)",
            "reachable(b)",
            "invariant(a)",
            "safe",
        ]
        hashes = {property_hash(parse_property(t)) for t in texts}
        assert len(hashes) == len(texts)


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "reachable(",
            "reachable()",
            "deadlock &",
            "deadlock deadlock",
            "reachable(a &)",
            "reachable(safe)",
            "invariant(safe & a)",
            "reachable(a << 2)",
            "(deadlock",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(PropertyError):
            parse_property(text)

    def test_safe_sugar_is_the_safety_invariant(self):
        assert parse_property("safe") == Invariant(Safe())
