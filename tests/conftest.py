"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.models import random_net, random_state_machine_product
from repro.net import NetBuilder, PetriNet


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Keep the engine's default result cache out of the working tree."""
    monkeypatch.setenv("GPO_CACHE_DIR", str(tmp_path / "gpo-cache"))


@pytest.fixture
def choice() -> PetriNet:
    """p0 -> (a | b): the minimal conflict."""
    builder = NetBuilder("choice")
    builder.place("p0", marked=True)
    builder.place("p1")
    builder.place("p2")
    builder.transition("a", inputs=["p0"], outputs=["p1"])
    builder.transition("b", inputs=["p0"], outputs=["p2"])
    return builder.build()


@pytest.fixture
def sequence() -> PetriNet:
    """p0 -t1-> p1 -t2-> p2: a simple pipeline."""
    builder = NetBuilder("sequence")
    builder.place("p0", marked=True)
    builder.place("p1")
    builder.place("p2")
    builder.transition("t1", inputs=["p0"], outputs=["p1"])
    builder.transition("t2", inputs=["p1"], outputs=["p2"])
    return builder.build()


@pytest.fixture
def loop_net() -> PetriNet:
    """A two-state cycle (deadlock-free)."""
    builder = NetBuilder("loop")
    builder.place("p0", marked=True)
    builder.place("p1")
    builder.transition("go", inputs=["p0"], outputs=["p1"])
    builder.transition("back", inputs=["p1"], outputs=["p0"])
    return builder.build()


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------
@st.composite
def safe_nets(draw, max_places: int = 7, max_transitions: int = 6):
    """Random nets that are usually safe (callers filter UnsafeNetError)."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    num_places = draw(st.integers(min_value=3, max_value=max_places))
    num_transitions = draw(st.integers(min_value=2, max_value=max_transitions))
    return random_net(
        rng,
        num_places=num_places,
        num_transitions=num_transitions,
    )


@st.composite
def state_machine_nets(draw):
    """Safe-by-construction synchronized state machines."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    return random_state_machine_product(
        rng,
        num_components=draw(st.integers(min_value=2, max_value=4)),
        states_per_component=draw(st.integers(min_value=2, max_value=4)),
        num_resources=draw(st.integers(min_value=1, max_value=3)),
    )
