"""Cross-analyzer agreement on the unified search core.

Full, stubborn and GPO analysis answer the same deadlock question through
the same driver; over random safe nets they must agree on the verdict,
report uniform partial-result semantics, and carry the instrumentation
counters the core promises.
"""

from hypothesis import HealthCheck, given, settings

from repro.analysis.reachability import analyze as full_analyze
from repro.gpo.analysis import analyze as gpo_analyze
from repro.models import nsdp
from repro.stubborn.explorer import analyze as stubborn_analyze
from repro.timed.reach import analyze as timed_analyze
from repro.timed.tpn import TimedPetriNet

from ..conftest import state_machine_nets

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_BUDGET = {"max_states": 3000, "max_seconds": 20.0}


class TestDeadlockVerdictAgreement:
    @_SETTINGS
    @given(net=state_machine_nets())
    def test_full_stubborn_gpo_agree(self, net):
        full = full_analyze(net, **_BUDGET)
        stubborn = stubborn_analyze(net, **_BUDGET)
        gpo = gpo_analyze(net, backend="explicit", **_BUDGET)
        if not (full.exhaustive and stubborn.exhaustive and gpo.exhaustive):
            return  # bounded runs decide nothing
        assert full.deadlock == stubborn.deadlock == gpo.deadlock

    @_SETTINGS
    @given(net=state_machine_nets())
    def test_stubborn_never_explores_more_than_full(self, net):
        full = full_analyze(net, **_BUDGET)
        stubborn = stubborn_analyze(net, **_BUDGET)
        if full.exhaustive and stubborn.exhaustive:
            assert stubborn.states <= full.states


class TestUniformSemantics:
    def test_all_analyzers_absorb_state_overruns(self):
        # Budgets strictly below each analyzer's exhaustive size (GPO needs
        # only 2 states for NSDP regardless of the instance size).
        net = nsdp(4)
        for analyze, budget in (
            (full_analyze, 2),
            (stubborn_analyze, 2),
            (gpo_analyze, 1),
        ):
            result = analyze(net, max_states=budget)
            assert not result.exhaustive
            assert result.states == budget  # stops exactly at the budget
            assert result.extras["aborted"] == f"> {budget} states"
        timed = timed_analyze(TimedPetriNet.untimed(net), max_classes=2)
        assert not timed.exhaustive
        assert timed.states == 2
        assert timed.extras["aborted"] == "> 2 states"

    def test_all_analyzers_absorb_time_overruns(self):
        net = nsdp(4)
        for analyze in (full_analyze, stubborn_analyze, gpo_analyze):
            result = analyze(net, max_seconds=0.0)
            assert not result.exhaustive
            assert result.extras["aborted"] == "> 0s"
        timed = timed_analyze(TimedPetriNet.untimed(net), max_seconds=0.0)
        assert not timed.exhaustive
        assert timed.extras["aborted"] == "> 0s"

    def test_instrumentation_present_everywhere(self):
        net = nsdp(2)
        uniform = ("expanded", "peak_frontier", "mean_enabled",
                   "states_per_second")
        results = {
            "full": full_analyze(net),
            "stubborn": stubborn_analyze(net),
            "gpo": gpo_analyze(net),
            "timed": timed_analyze(TimedPetriNet.untimed(net)),
        }
        for name, result in results.items():
            for key in uniform:
                assert key in result.extras, (name, key)
        assert 0.0 < results["stubborn"].extras["stubborn_ratio"] <= 1.0
        assert results["gpo"].extras["mean_scenarios"] >= 1.0
        assert results["gpo"].extras["max_scenarios"] >= 1

    def test_bounded_verdict_string(self):
        result = full_analyze(nsdp(4), max_states=5)
        assert result.verdict == "no deadlock found (bounded)"
