"""Sharded level-synchronized BFS vs the sequential analyzers.

Sharding and batching regroup the exploration; they must never change
it.  Every configuration — any shard count, scalar or numpy-batched
expansion, inline or forked workers — has to reproduce the sequential
explorer's exact state/edge/deadlock counts, because shard ownership
(splitmix64 of the packed marking) and the successor rule are pure
functions of the marking and the level barrier makes the schedule
irrelevant.  The tests pin that invariance on the Table 1 families and
on random safe nets, plus the budget/property/portfolio plumbing.
"""

from __future__ import annotations

import multiprocessing

import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis.reachability import analyze as full_analyze
from repro.engine.jobs import Budget, VerificationJob, execute_job
from repro.engine.portfolio import run_race
from repro.models import asat, nsdp, over, rw
from repro.net.batch import HAVE_NUMPY
from repro.props.ast import UnsupportedPropertyError
from repro.search.parallel import (
    analyze_parallel,
    explore_parallel,
    shard_of,
)
from repro.stubborn.explorer import analyze as stubborn_analyze

from ..conftest import safe_nets

FAMILIES = [nsdp(4), asat(2), over(3), rw(6)]

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestCountInvariance:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    @pytest.mark.parametrize("net", FAMILIES, ids=lambda n: n.name)
    def test_full_semantics_match_sequential(self, net, shards):
        sequential = full_analyze(net, use_kernel=True, want_witness=False)
        outcome = explore_parallel(
            net, shards=shards, inner="full", batch=False, workers="inline"
        )
        assert outcome.exhaustive
        assert outcome.states == sequential.states
        assert outcome.edges == sequential.edges
        assert (outcome.deadlocks > 0) == sequential.deadlock
        assert len(outcome.shard_states) == shards
        assert sum(outcome.shard_states) == outcome.states

    @pytest.mark.parametrize("shards", [1, 2, 3])
    @pytest.mark.parametrize("net", FAMILIES, ids=lambda n: n.name)
    def test_stubborn_semantics_match_sequential(self, net, shards):
        sequential = stubborn_analyze(
            net, use_kernel=True, want_witness=False
        )
        outcome = explore_parallel(
            net, shards=shards, inner="stubborn", workers="inline"
        )
        assert outcome.exhaustive
        assert outcome.states == sequential.states
        assert outcome.edges == sequential.edges
        assert (outcome.deadlocks > 0) == sequential.deadlock

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("net", FAMILIES, ids=lambda n: n.name)
    def test_batched_matches_scalar(self, net, shards):
        scalar = explore_parallel(
            net, shards=shards, batch=False, workers="inline"
        )
        batched = explore_parallel(
            net, shards=shards, batch=True, workers="inline"
        )
        assert batched.batch
        assert (batched.states, batched.edges, batched.deadlocks) == (
            scalar.states,
            scalar.edges,
            scalar.deadlocks,
        )

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_forked_workers_match_inline(self):
        net = nsdp(4)
        inline = explore_parallel(net, shards=2, workers="inline")
        forked = explore_parallel(net, shards=2, workers="fork")
        assert forked.workers == "fork"
        assert (forked.states, forked.edges, forked.deadlocks) == (
            inline.states,
            inline.edges,
            inline.deadlocks,
        )
        # Per-shard totals are a pure function of the markings, so even
        # the partition must be identical under process scheduling.
        assert forked.shard_states == inline.shard_states

    @_SETTINGS
    @given(net=safe_nets())
    def test_random_nets_agree_with_full(self, net):
        from repro.net.exceptions import UnsafeNetError

        try:
            sequential = full_analyze(
                net, use_kernel=True, want_witness=False, max_states=2000
            )
        except UnsafeNetError:
            with pytest.raises(UnsafeNetError):
                explore_parallel(net, shards=3, workers="inline")
            return
        if not sequential.exhaustive:
            return
        outcome = explore_parallel(net, shards=3, workers="inline")
        assert outcome.states == sequential.states
        assert outcome.edges == sequential.edges
        assert (outcome.deadlocks > 0) == sequential.deadlock


class TestOwnership:
    def test_shard_of_partitions_every_state(self):
        for shards in (1, 2, 3, 5):
            assert all(
                0 <= shard_of(bits, 1, shards) < shards
                for bits in range(256)
            )

    def test_single_shard_owns_everything(self):
        assert all(shard_of(bits, 1, 1) == 0 for bits in range(256))


class TestBudgetsAndProperties:
    def test_state_budget_truncates_at_level_granularity(self):
        outcome = explore_parallel(nsdp(6), shards=2, max_states=100)
        assert not outcome.exhaustive
        assert outcome.stop_reason == "state-budget"
        assert outcome.states >= 100  # checked between levels

    def test_zero_second_budget_reports_time(self):
        outcome = explore_parallel(nsdp(4), shards=2, max_seconds=0.0)
        assert not outcome.exhaustive
        assert outcome.stop_reason == "time-budget"

    def test_analyze_parallel_refuses_non_deadlock(self):
        with pytest.raises(UnsupportedPropertyError):
            analyze_parallel(nsdp(3), shards=2, prop="reachable(eat0)")

    def test_analyze_parallel_matches_sequential_result(self):
        net = over(3)
        sequential = full_analyze(net, use_kernel=True, want_witness=False)
        result = analyze_parallel(net, shards=2, workers="inline")
        assert result.exhaustive
        assert result.states == sequential.states
        assert result.deadlock == sequential.deadlock


class TestEnginePlumbing:
    def test_execute_job_parallel_method(self):
        job = VerificationJob(
            net=nsdp(4),
            method="parallel",
            budget=Budget(extra={"shards": 2, "workers": "inline"}),
        )
        result = execute_job(job)
        sequential = full_analyze(
            nsdp(4), use_kernel=True, want_witness=False
        )
        assert result.exhaustive
        assert result.states == sequential.states
        assert result.deadlock == sequential.deadlock

    def test_run_race_shards_enters_parallel(self):
        outcome = run_race(
            nsdp(3), methods=("full",), jobs=1, shards=2
        )
        assert "parallel" in outcome.methods
        assert outcome.conclusive

    def test_run_race_drops_parallel_on_property_race(self):
        outcome = run_race(
            nsdp(3),
            methods=("full",),
            jobs=1,
            shards=2,
            query="reachable(eat0)",
        )
        assert "parallel" not in outcome.methods
        assert any(method == "parallel" for method, _ in outcome.dropped)
