"""The generic driver: orders, budgets, partial results, observers."""

import pytest

from repro.analysis.reachability import MarkingSpace
from repro.models import nsdp
from repro.search.core import (
    INSTRUMENTATION_FIELDS,
    SearchSpace,
    abort_note,
    explore,
    raise_if_bounded,
)
from repro.search.limits import ExplorationLimitReached, TimeLimitReached
from repro.search.observers import MarkingQueryObserver, SearchObserver


class ChainSpace:
    """0 -> 1 -> ... -> n (state n is a deadlock)."""

    def __init__(self, length: int) -> None:
        self.length = length

    def initial(self) -> int:
        return 0

    def successors(self, state, ctx):
        if state < self.length:
            yield (f"t{state}", state + 1)

    def is_deadlock(self, state) -> bool:
        return state == self.length


class DiamondSpace:
    """0 branches to 1 and 2, both reaching 3; plus a back-edge 3 -> 0."""

    def initial(self) -> int:
        return 0

    def successors(self, state, ctx):
        edges = {0: [("a", 1), ("b", 2)], 1: [("c", 3)], 2: [("d", 3)],
                 3: [("back", 0)]}
        return edges[state]

    def is_deadlock(self, state) -> bool:
        return False


class TestDriverBasics:
    def test_marking_space_satisfies_protocol(self):
        assert isinstance(MarkingSpace(nsdp(2)), SearchSpace)

    def test_exhausts_chain(self):
        outcome = explore(ChainSpace(5))
        assert outcome.exhaustive
        assert outcome.stop_reason is None
        assert outcome.graph.num_states == 6
        assert outcome.graph.num_edges == 5
        assert outcome.graph.deadlocks == {5}

    def test_bfs_and_dfs_explore_same_graph(self):
        bfs = explore(DiamondSpace(), order="bfs")
        dfs = explore(DiamondSpace(), order="dfs")
        assert set(bfs.graph.states()) == set(dfs.graph.states())
        assert sorted(bfs.graph.edges()) == sorted(dfs.graph.edges())

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError, match="unknown search order"):
            explore(ChainSpace(1), order="random")

    def test_dfs_initial_state_is_first(self):
        outcome = explore(DiamondSpace(), order="dfs")
        assert next(outcome.graph.states()) == 0


class TestBudgets:
    def test_state_budget_stops_exactly_at_capacity(self):
        outcome = explore(ChainSpace(100), max_states=10)
        assert not outcome.exhaustive
        assert outcome.stop_reason == "state-budget"
        assert outcome.graph.num_states == 10

    def test_budget_equal_to_size_is_exhaustive(self):
        outcome = explore(ChainSpace(5), max_states=6)
        assert outcome.exhaustive
        assert outcome.graph.num_states == 6

    def test_zero_time_budget_stops(self):
        outcome = explore(ChainSpace(100), max_seconds=0.0)
        assert not outcome.exhaustive
        assert outcome.stop_reason == "time-budget"

    def test_stop_at_first_deadlock_is_exhaustive(self):
        outcome = explore(ChainSpace(3), stop_at_first_deadlock=True)
        assert outcome.exhaustive
        assert outcome.stop_reason == "deadlock"
        assert outcome.graph.deadlocks == {3}

    def test_raise_if_bounded_maps_state_budget(self):
        outcome = explore(ChainSpace(100), max_states=10)
        with pytest.raises(ExplorationLimitReached) as exc_info:
            raise_if_bounded(outcome, max_states=10)
        assert exc_info.value.states_explored == 10

    def test_raise_if_bounded_maps_time_budget(self):
        outcome = explore(ChainSpace(100), max_seconds=0.0)
        with pytest.raises(TimeLimitReached):
            raise_if_bounded(outcome, max_seconds=0.0)

    def test_raise_if_bounded_passes_exhaustive_through(self):
        outcome = explore(ChainSpace(3))
        assert raise_if_bounded(outcome, max_states=100) is outcome

    def test_abort_notes(self):
        assert abort_note("state-budget", max_states=10) == "> 10 states"
        assert abort_note("time-budget", max_seconds=0.0) == "> 0s"
        assert abort_note("observer") == "stopped by observer"
        assert abort_note(None) is None
        assert abort_note("deadlock") is None


class TestInstrumentation:
    def test_stats_cover_the_run(self):
        outcome = explore(ChainSpace(5))
        stats = outcome.stats
        assert stats.states == 6
        assert stats.expanded == 6
        assert stats.successor_total == 5
        assert 0.0 < stats.mean_enabled < 1.0
        assert stats.states_per_second > 0
        assert stats.peak_frontier >= 1

    def test_as_extras_has_uniform_fields(self):
        extras = explore(ChainSpace(2)).stats.as_extras()
        for key in ("expanded", "peak_frontier", "mean_enabled",
                    "states_per_second"):
            assert key in extras
            assert key in INSTRUMENTATION_FIELDS

    def test_bounded_run_reports_partial_expansion(self):
        outcome = explore(ChainSpace(100), max_states=10)
        assert outcome.stats.expanded < 100

    def test_peak_frontier_sees_branching(self):
        net = nsdp(4)
        outcome = explore(MarkingSpace(net))
        assert outcome.stats.peak_frontier > 1
        assert outcome.stats.mean_enabled > 1.0


class _Recorder(SearchObserver):
    def __init__(self):
        self.states = []
        self.edges = []
        self.deadlocks = []
        self.done = None

    def on_state(self, state, ctx):
        self.states.append(state)

    def on_edge(self, source, label, target, is_new):
        self.edges.append((source, label, target, is_new))

    def on_deadlock(self, state):
        self.deadlocks.append(state)

    def on_done(self, outcome):
        self.done = outcome


class TestObservers:
    def test_recorder_sees_everything(self):
        recorder = _Recorder()
        outcome = explore(ChainSpace(3), observers=(recorder,))
        assert recorder.states == [0, 1, 2, 3]  # includes the initial state
        assert [e[:3] for e in recorder.edges] == [
            (0, "t0", 1), (1, "t1", 2), (2, "t2", 3)
        ]
        assert recorder.deadlocks == [3]
        assert recorder.done is outcome

    def test_observer_stop_request(self):
        class StopAtTwo(SearchObserver):
            def on_state(self, state, ctx):
                return state == 2

        outcome = explore(ChainSpace(100), observers=(StopAtTwo(),))
        assert not outcome.exhaustive
        assert outcome.stop_reason == "observer"
        assert outcome.graph.num_states == 3

    def test_marking_query_observer(self):
        query = MarkingQueryObserver(lambda state: state == 4)
        outcome = explore(ChainSpace(100), observers=(query,))
        assert query.matched == 4
        assert outcome.stop_reason == "observer"
        assert outcome.graph.num_states == 5

    def test_query_miss_leaves_search_exhaustive(self):
        query = MarkingQueryObserver(lambda state: False)
        outcome = explore(ChainSpace(5), observers=(query,))
        assert query.matched is None
        assert outcome.exhaustive
