"""Direct unit tests for the shared budget helpers."""

import time

import pytest

from repro.search.limits import (
    Deadline,
    ExplorationLimitReached,
    TimeLimitReached,
    stopwatch,
)


class TestDeadline:
    def test_of_none_is_none(self):
        assert Deadline.of(None) is None

    def test_of_builds_deadline(self):
        deadline = Deadline.of(5.0)
        assert deadline is not None
        assert deadline.seconds == 5.0

    def test_not_expired_immediately(self):
        assert not Deadline(60.0).expired()

    def test_zero_budget_expires(self):
        deadline = Deadline(0.0)
        time.sleep(0.001)
        assert deadline.expired()

    def test_check_passes_before_deadline(self):
        Deadline(60.0).check(5)  # must not raise

    def test_check_raises_with_progress(self):
        deadline = Deadline(0.0)
        time.sleep(0.001)
        with pytest.raises(TimeLimitReached) as exc_info:
            deadline.check(42)
        assert exc_info.value.seconds == 0.0
        assert exc_info.value.states_explored == 42


class TestLimitExceptions:
    def test_exploration_limit_carries_progress(self):
        exc = ExplorationLimitReached(100, 100)
        assert exc.limit == 100
        assert exc.states_explored == 100
        assert "100" in str(exc)

    def test_time_limit_message(self):
        exc = TimeLimitReached(1.5)
        assert exc.states_explored is None
        assert "1.5s" in str(exc)


class TestStopwatch:
    def test_measures_elapsed_time(self):
        with stopwatch() as elapsed:
            time.sleep(0.01)
        assert elapsed[0] >= 0.01

    def test_records_on_exception(self):
        box = None
        try:
            with stopwatch() as elapsed:
                box = elapsed
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert box is not None and box[0] >= 0.0
