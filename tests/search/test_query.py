"""On-the-fly reachability queries over full and stubborn spaces."""

from repro.analysis.reachability import MarkingSpace, reachable_markings
from repro.models import nsdp
from repro.search.query import find_state
from repro.stubborn.explorer import StubbornSpace


def _names_predicate(net, *places):
    wanted = frozenset(places)

    def hit(marking):
        return wanted <= net.marking_names(marking)

    return hit


class TestFindState:
    def test_finds_reachable_deadlock_marking(self):
        net = nsdp(2)
        result = find_state(
            MarkingSpace(net), _names_predicate(net, "hasR0", "hasR1")
        )
        assert result.reached
        assert result.conclusive
        assert result.state is not None
        assert result.trace is not None and len(result.trace) == 2

    def test_early_termination_explores_less(self):
        net = nsdp(4)
        full_size = len(reachable_markings(net))
        result = find_state(
            MarkingSpace(net),
            _names_predicate(net, "hasR0", "hasR1", "hasR2", "hasR3"),
        )
        assert result.reached
        assert result.outcome.graph.num_states < full_size

    def test_initial_state_matches_immediately(self):
        net = nsdp(2)
        result = find_state(MarkingSpace(net), lambda marking: True)
        assert result.reached
        assert result.state == net.initial_marking
        assert result.trace == ()
        assert result.outcome.graph.num_states == 1

    def test_miss_on_exhausted_space_is_conclusive(self):
        net = nsdp(2)
        result = find_state(MarkingSpace(net), lambda marking: False)
        assert not result.reached
        assert result.exhaustive
        assert result.conclusive

    def test_miss_under_budget_is_inconclusive(self):
        net = nsdp(4)
        result = find_state(
            MarkingSpace(net), lambda marking: False, max_states=10
        )
        assert not result.reached
        assert not result.exhaustive
        assert not result.conclusive

    def test_stubborn_space_finds_preserved_deadlock(self):
        # Stubborn sets preserve deadlocks, so the deadlocked marking is
        # reachable inside the reduced space too.
        net = nsdp(2)
        result = find_state(
            StubbornSpace(net), _names_predicate(net, "hasR0", "hasR1")
        )
        assert result.reached

    def test_dfs_order_also_finds_target(self):
        net = nsdp(2)
        result = find_state(
            MarkingSpace(net),
            _names_predicate(net, "hasR0", "hasR1"),
            order="dfs",
        )
        assert result.reached
        assert result.trace is not None
