"""Cross-process trace merging through the sharded explorer (fork mode).

The acceptance property of trace propagation: running the same analysis
with inline shard stepping and with forked shard workers must produce
the *same* single-trace span tree — one trace id on every span, no
orphan parents, identical span-name counts — because the shard spans are
emitted per ``run_level`` call on both sides of the fork boundary.
"""

from collections import Counter

import pytest

from repro.models import nsdp
from repro.obs import names
from repro.obs.tracer import Tracer, activate
from repro.search.parallel import analyze_parallel


def traced_run(workers: str) -> list[dict]:
    net = nsdp(4)
    net.kernel()
    net.static_analysis()
    tracer = Tracer()
    with activate(tracer):
        result = analyze_parallel(net, shards=2, workers=workers)
    assert result.deadlock is True
    return tracer.records()


def span_records(records: list[dict]) -> list[dict]:
    return [r for r in records if "name" in r and "span_id" in r]


@pytest.fixture(scope="module")
def inline_records() -> list[dict]:
    return traced_run("inline")


@pytest.fixture(scope="module")
def forked_records() -> list[dict]:
    return traced_run("fork")


class TestMergedTrace:
    def test_single_trace_id_inline(self, inline_records):
        ids = {r.get("trace_id") for r in span_records(inline_records)}
        assert len(ids) == 1 and None not in ids

    def test_single_trace_id_forked(self, forked_records):
        ids = {r.get("trace_id") for r in span_records(forked_records)}
        assert len(ids) == 1 and None not in ids

    def test_no_orphan_spans_forked(self, forked_records):
        """Every parent id in the merged trace resolves to a span in the
        same trace — worker roots attach to the coordinator's span."""
        spans = span_records(forked_records)
        known = {r["span_id"] for r in spans}
        parents = {r["parent_id"] for r in spans if "parent_id" in r}
        assert parents <= known

    def test_shard_spans_cross_the_fork(self, forked_records):
        spans = span_records(forked_records)
        by_pid = {}
        for record in spans:
            if record["name"] == names.SPAN_PARALLEL_SHARD:
                by_pid.setdefault(record["pid"], 0)
                by_pid[record["pid"]] += 1
        # Two forked workers → shard spans from (at least) two pids,
        # none from the coordinator's own run_level path.
        assert len(by_pid) >= 2

    def test_span_counts_match_inline_vs_fork(
        self, inline_records, forked_records
    ):
        inline = Counter(r["name"] for r in span_records(inline_records))
        forked = Counter(r["name"] for r in span_records(forked_records))
        assert inline == forked
        assert inline[names.SPAN_PARALLEL_SHARD] > 0
        assert inline[names.SPAN_ANALYZE] == 1
