"""Setup shim for environments without the `wheel` package.

All metadata lives in pyproject.toml; this file only enables legacy
editable installs (`pip install -e .`) where PEP 660 builds are
unavailable.
"""

from setuptools import setup

setup()
