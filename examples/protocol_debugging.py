#!/usr/bin/env python3
"""Debugging and fixing a protocol with generalized partial-order analysis.

The overtake protocol (Table 1's OVER) deadlocks: when every car signals
intent to overtake simultaneously, nobody is left cruising to yield.  This
example

1. finds the deadlock with GPO in 2 GPN states and replays its witness
   trace on the classical semantics,
2. applies the classic symmetry-breaking fix — one designated car never
   initiates an overtake, so somebody always remains able to yield
   (the "left-handed philosopher" trick), and
3. re-verifies the fixed protocol with every analyzer.

Step 3 also illustrates *when to use which analyzer*: the broken protocol
is all symmetric conflict — GPO's home turf — while the fixed protocol has
sparse, asymmetric conflicts where classical stubborn-set reduction is
already cheap and GPO's scenario bookkeeping buys nothing (its state count
may even exceed the classical one).  The paper positions the methods as
complementary; this is what that looks like in practice.

Run:  python examples/protocol_debugging.py [n_cars]
"""

import sys

from repro.analysis import analyze as full_analyze
from repro.gpo import analyze as gpo_analyze
from repro.models import over
from repro.net import NetBuilder, PetriNet
from repro.stubborn import analyze as stubborn_analyze


def over_asymmetric(n: int) -> PetriNet:
    """The overtake protocol with car 0 demoted to a pure yielder.

    Identical to :func:`repro.models.over` except car 0 has no ``ask``
    pipeline: with one car always available to yield, the circular wait
    cannot close.
    """
    b = NetBuilder(f"over_asym_{n}")
    for i in range(n):
        b.place(f"cruise{i}", marked=True)
        for name in ("asking", "out", "passing", "waitfin", "yielding"):
            b.place(f"{name}{i}")
        for channel in ("req", "ack", "fin", "finack"):
            b.place(f"{channel}{i}")
    for i in range(n):
        behind = (i - 1) % n
        if i != 0:
            b.transition(f"ask{i}", inputs=[f"cruise{i}"],
                         outputs=[f"asking{i}", f"req{i}"])
            b.transition(f"pullout{i}", inputs=[f"asking{i}", f"ack{i}"],
                         outputs=[f"out{i}"])
            b.transition(f"pass{i}", inputs=[f"out{i}"],
                         outputs=[f"passing{i}"])
            b.transition(f"done{i}", inputs=[f"passing{i}"],
                         outputs=[f"waitfin{i}", f"fin{i}"])
            b.transition(f"settle{i}", inputs=[f"waitfin{i}", f"finack{i}"],
                         outputs=[f"cruise{i}"])
        if behind != 0:  # nobody overtakes car behind=0's slot, no grant path
            b.transition(f"grant{i}", inputs=[f"req{behind}", f"cruise{i}"],
                         outputs=[f"yielding{i}", f"ack{behind}"])
            b.transition(f"resume{i}", inputs=[f"yielding{i}", f"fin{behind}"],
                         outputs=[f"cruise{i}", f"finack{behind}"])
    return b.build()


def main(n: int = 3):
    # --- step 1: find the bug -------------------------------------------
    broken = over(n)
    result = gpo_analyze(broken)
    assert result.deadlock
    print(f"{broken.name}: GPO found a deadlock in {result.states} GPN states")
    print("witness:", result.witness)

    # Replay the witness scenario classically: fire each car's 'ask'.
    marking = broken.initial_marking
    for i in range(n):
        marking = broken.fire_by_name(f"ask{i}", marking)
    assert broken.is_deadlocked(marking)
    print("replayed: all cars asking simultaneously is indeed dead\n")

    # --- step 2 + 3: fix and re-verify ----------------------------------
    fixed = over_asymmetric(n)
    full = full_analyze(fixed, max_states=300_000)
    reduced = stubborn_analyze(fixed, max_states=300_000)
    print(f"{fixed.name}: full -> {full.describe()}")
    print(f"{fixed.name}: stubborn -> {reduced.describe()}")
    assert not full.deadlock and not reduced.deadlock

    if n <= 3:
        # Small instances: GPO agrees, though with no reduction to offer —
        # sparse asymmetric conflicts are classical PO's territory.
        gpo = gpo_analyze(fixed)
        print(f"{fixed.name}: gpo -> {gpo.describe()}")
        assert not gpo.deadlock
    print("\nThe designated-yielder fix removes the circular wait: verified.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
