#!/usr/bin/env python3
"""Quickstart: build a safe Petri net and check it for deadlocks.

Builds a tiny client/server handshake with a forgotten timeout path,
verifies it with all four analyzers (conventional, stubborn-set reduced,
symbolic, and the paper's generalized partial-order analysis), and prints
the deadlock witness the analysis produces.

Run:  python examples/quickstart.py
"""

from repro import NetBuilder, verify


def build_handshake():
    """A client/server request-reply net with a deadlockable branch.

    The server may process a request either quickly (replying) or via a
    slow path that waits for a flush — but the flush needs the client to
    be idle, and the client is blocked waiting for the reply: a classic
    cross-wait bug.
    """
    b = NetBuilder("handshake")
    # client
    b.place("client_idle", marked=True)
    b.place("client_waiting")
    b.place("request")  # channel client -> server
    b.place("reply")  # channel server -> client
    # server
    b.place("server_idle", marked=True)
    b.place("server_busy")
    b.place("server_flushing")

    b.transition("send_request", inputs=["client_idle"], outputs=["client_waiting", "request"])
    b.transition("receive", inputs=["request", "server_idle"], outputs=["server_busy"])
    # fast path: reply immediately
    b.transition("reply_fast", inputs=["server_busy"], outputs=["server_idle", "reply"])
    # slow path: flush first — but the flush barrier needs the client idle!
    b.transition("start_flush", inputs=["server_busy"], outputs=["server_flushing"])
    b.transition("finish_flush", inputs=["server_flushing", "client_idle"],
                 outputs=["server_idle", "reply", "client_idle"])
    b.transition("get_reply", inputs=["reply", "client_waiting"], outputs=["client_idle"])
    return b.build()


def main():
    net = build_handshake()
    print(f"net: {net.name}  |P|={net.num_places} |T|={net.num_transitions}\n")

    for method in ("full", "stubborn", "symbolic", "gpo"):
        result = verify(net, method=method)
        print(result.describe())

    # The default (GPO) analysis with a trace:
    result = verify(net)
    assert result.deadlock, "the cross-wait bug must be found"
    print("\nwitness:", result.witness)
    print(
        "\nDiagnosis: after 'send_request' and 'start_flush', the server"
        "\nwaits for 'client_idle' while the client waits for 'reply'."
    )


if __name__ == "__main__":
    main()
