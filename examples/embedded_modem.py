#!/usr/bin/env python3
"""Verifying an embedded-system design: a QAM modem receive path.

The paper's closing section reports applying generalized partial-order
analysis to real embedded designs (a QAM modem among them).  This example
plays that story on our reconstruction: a multi-lane receive pipeline
whose controller can retrain the shared equalizer engine.

The buggy revision finishes a retrain only "once the equalizer's input
channel has drained" — a quiescence condition that can never hold while
the FIR stage keeps filling the channel.  With 3 lanes the interleaved
state space exceeds half a million states and exhaustive search becomes
slow, while the generalized analysis pins the wedge in 11 GPN states —
independent of the lane count — and prints the scenario that reaches it.

Run:  python examples/embedded_modem.py [lanes]
"""

import sys

from repro.analysis import analyze as full_analyze
from repro.gpo import MarkingConstraint, analyze as gpo_analyze, check_safety
from repro.models import modem
from repro.stubborn import analyze as stubborn_analyze


def main(lanes: int = 3):
    buggy = modem(lanes, bug=True)
    print(f"{buggy.name}: |P|={buggy.num_places} |T|={buggy.num_transitions}")

    # Exhaustive search struggles as lanes are added...
    full = full_analyze(buggy, max_states=100_000)
    print(f"  full reachability: {full.describe()}")

    # ...the reductions do not.
    reduced = stubborn_analyze(buggy, max_states=100_000)
    print(f"  stubborn sets:     {reduced.describe()}")
    gpo = gpo_analyze(buggy)
    print(f"  generalized PO:    {gpo.describe()}")
    assert gpo.deadlock and reduced.deadlock
    print(f"\n  witness: {gpo.witness}\n")

    # The fix drops the impossible quiescence condition.
    fixed = modem(lanes, bug=False)
    gpo = gpo_analyze(fixed)
    reduced = stubborn_analyze(fixed, max_states=100_000)
    print(f"{fixed.name}: gpo -> {gpo.describe()}")
    print(f"{fixed.name}: stubborn -> {reduced.describe()}")
    assert not gpo.deadlock and not reduced.deadlock

    # And the handshake invariants survive the fix: no channel is ever
    # simultaneously full and empty, and the shared equalizer engine is
    # never training while a lane claims it is idle... for lane 0, whose
    # equalizer the engine pauses.
    constraints = [
        MarkingConstraint(marked=(f"ch{k}_l0_full", f"ch{k}_l0_empty"))
        for k in (1, 2, 3)
    ]
    constraints.append(
        MarkingConstraint(marked=("eq_training", "eq_idle_l0"))
    )
    safety = check_safety(fixed, constraints)
    print(f"\nsafety [{' | '.join(c.describe() for c in constraints)}]:")
    print(f"  {safety.describe()}")
    assert safety.safe
    print("\nThe retrain wedge is gone; the handshake invariants hold.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
