#!/usr/bin/env python3
"""Safety verification of the asynchronous arbiter tree (ASAT).

Checks the two properties an arbiter must provide —

* **mutual exclusion**: no two users ever hold the resource together
  (a safety property, checked as unreachability of bad markings);
* **deadlock freedom**: the grant/release handshakes can never wedge —

and contrasts how hard each analyzer works for the same verdict.  Also
exports the net and its (small-instance) reachability graph as Graphviz
DOT files for inspection.

Run:  python examples/arbiter_mutex.py [n_users] [--dot]
"""

import sys

from repro.analysis import analyze as full_analyze, explore, find_violation
from repro.gpo import analyze as gpo_analyze
from repro.models import asat
from repro.net import net_to_dot, reachability_to_dot
from repro.stubborn import analyze as stubborn_analyze
from repro.symbolic import analyze as symbolic_analyze


def main(n: int = 4, write_dot: bool = False):
    net = asat(n)
    print(f"{net.name}: |P|={net.num_places} |T|={net.num_transitions}\n")

    # -- mutual exclusion --------------------------------------------------
    critical = [f"use{i}" for i in range(n)]

    def two_users_active(marking_names):
        return sum(1 for p in critical if p in marking_names) >= 2

    violation = find_violation(net, two_users_active, max_states=200_000)
    print("mutual exclusion:", "VIOLATED" if violation else "holds")
    assert violation is None

    # -- deadlock freedom, all four ways ------------------------------------
    for analyzer in (full_analyze, stubborn_analyze, symbolic_analyze, gpo_analyze):
        result = analyzer(net)
        print(result.describe())
        assert not result.deadlock

    print(
        "\nNote the working-set sizes: the full graph explodes with the "
        "number of users,\nstubborn sets tame most of it (arbiter trees are "
        "concurrency-heavy), and GPO\nstays nearly flat by also merging the "
        "grant choices."
    )

    if write_dot:
        with open("asat_net.dot", "w") as handle:
            handle.write(net_to_dot(net))
        graph = explore(net, max_states=5_000)
        with open("asat_rg.dot", "w") as handle:
            handle.write(
                reachability_to_dot(
                    net,
                    graph.states(),
                    graph.edges(),
                    initial=net.initial_marking,
                    deadlocks=graph.deadlocks,
                )
            )
        print("\nwrote asat_net.dot and asat_rg.dot (render with `dot -Tpdf`)")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    main(size, write_dot="--dot" in sys.argv)
