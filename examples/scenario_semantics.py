#!/usr/bin/env python3
"""A guided tour of Generalized Petri Net semantics (paper Section 3).

Re-enacts the paper's Figures 3 and 7 step by step, printing the scenario
families ("colored tokens") in each place, the valid-set family ``r``, and
the classical markings every GPN state covers — including the *extended
conflict* effect of Figure 7 where ``r`` collapses to ``{{A,C},{B,D}}``.

Run:  python examples/scenario_semantics.py
"""

from repro.gpo import (
    Gpn,
    dead_scenarios,
    enabled_families,
    mapping_named,
    multiple_fire,
    single_fire,
)
from repro.models import figure3_net, figure7_net


def show_state(gpn, state, label):
    print(f"--- {label}")
    for place, family in gpn.iter_place_families(state):
        scenarios = sorted(
            "{" + ",".join(sorted(gpn.net.transitions[t] for t in v)) + "}"
            for v in family.iter_sets()
        )
        print(f"  m({place}) = {{{', '.join(scenarios)}}}")
    valid = sorted(
        "{" + ",".join(sorted(gpn.net.transitions[t] for t in v)) + "}"
        for v in state.valid.iter_sets()
    )
    print(f"  r = {{{', '.join(valid)}}}")
    covered = sorted(sorted(m) for m in mapping_named(gpn, state))
    print(f"  covers classical markings: {covered}")


def tour_figure3():
    print("=" * 64)
    print("Figure 3: colored tokens distinguish conflicting paths")
    print("=" * 64)
    net = figure3_net()
    gpn = Gpn(net, backend="explicit")
    state = gpn.initial_state()
    show_state(gpn, state, "initial state (white token in p1)")

    a, b = net.transition_id("A"), net.transition_id("B")
    state = multiple_fire(gpn, state, frozenset([a, b]))
    show_state(gpn, state, "after firing A and B simultaneously")
    print(
        "  p2/p3 now hold the 'red' (A) scenarios, p4 the 'green' (B) ones."
    )

    single, _ = enabled_families(gpn, state)
    c, d = net.transition_id("C"), net.transition_id("D")
    print(f"  C single-enabled: {c in single};  D single-enabled: {d in single}")
    print("  (D's inputs carry conflicting colors — it can never fire.)")

    dead = dead_scenarios(gpn, state)
    print(
        "  dead scenarios (the B branch, classical marking {p4}):",
        sorted(
            "{" + ",".join(sorted(net.transitions[t] for t in v)) + "}"
            for v in dead.iter_sets()
        ),
    )

    state = single_fire(gpn, state, c)
    show_state(gpn, state, "after firing C (single semantics, no recoloring)")


def tour_figure7():
    print()
    print("=" * 64)
    print("Figure 7: sequential conflicts induce extended conflicts")
    print("=" * 64)
    net = figure7_net()
    gpn = Gpn(net, backend="explicit")
    state = gpn.initial_state()
    show_state(gpn, state, "initial state")

    a, b = net.transition_id("A"), net.transition_id("B")
    state = multiple_fire(gpn, state, frozenset([a, b]))
    show_state(gpn, state, "after firing {A,B}  (r unchanged)")

    c, d = net.transition_id("C"), net.transition_id("D")
    state = multiple_fire(gpn, state, frozenset([c, d]))
    show_state(gpn, state, "after firing {C,D}")
    print(
        "  r collapsed to {{A,C},{B,D}}: if A preceded C and C conflicts"
        "\n  with D, then A 'extendedly' conflicts with D — the paper's r2."
    )


if __name__ == "__main__":
    tour_figure3()
    tour_figure7()
