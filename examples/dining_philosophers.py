#!/usr/bin/env python3
"""NSDP: the paper's headline benchmark, end to end.

Shows the two sources of state explosion and how each analysis copes:

* full reachability grows ≈ ×4.2 per philosopher;
* stubborn-set reduction helps but stays exponential;
* generalized partial-order analysis explores a constant number of GPN
  states — each standing for exponentially many classical markings — and
  still finds the circular-wait deadlock with a concrete trace.

Run:  python examples/dining_philosophers.py [max_n]
"""

import sys

from repro.analysis import analyze as full_analyze
from repro.gpo import analyze as gpo_analyze
from repro.harness import format_table
from repro.models import nsdp
from repro.stubborn import analyze as stubborn_analyze


def main(max_n: int = 6):
    rows = []
    for n in range(2, max_n + 1):
        net = nsdp(n)
        full = full_analyze(net, max_states=100_000)
        reduced = stubborn_analyze(net, max_states=100_000)
        gpo = gpo_analyze(net)
        rows.append(
            [
                n,
                full.states if full.exhaustive else f">{full.states}",
                reduced.states if reduced.exhaustive else f">{reduced.states}",
                gpo.states,
                f"{gpo.time_seconds:.3f}",
                gpo.extras["scenarios"],
            ]
        )
    print(
        format_table(
            ["n", "full", "stubborn", "GPO", "GPO t(s)", "scenarios/state"],
            rows,
            title="Dining philosophers: states explored per analysis",
        )
    )

    # A concrete deadlock trace from the generalized analysis.
    result = gpo_analyze(nsdp(4))
    assert result.deadlock
    print("deadlock witness (4 philosophers):")
    print(" ", result.witness)
    print(
        "\nReading the trace: one simultaneous GPN firing covers every"
        "\nfirst-fork choice at once; the witness scenario is the branch"
        "\nwhere each philosopher grabbed one fork — the circular wait."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
