#!/usr/bin/env python3
"""Timing verification with time Petri nets (the paper's §5 outlook).

Many embedded designs are only correct *because of their timing*: an
untimed analysis then reports false alarms.  This example re-builds the
quickstart's client/server handshake as a time Petri net in which the
server's problematic slow-flush path exists structurally but is pruned by
the deadlines: the fast reply must happen within 2 time units while the
flush path cannot start before 10.

* Untimed reachability (the skeleton): reports the cross-wait deadlock —
  a false alarm for the real-time system.
* State-class analysis (Berthomieu-Diaz): proves the timed design
  deadlock-free.
* Tightening the fast-reply deadline past the flush threshold brings the
  deadlock back — the analysis finds it with a timed firing sequence.

Run:  python examples/timed_verification.py
"""

from repro.timed import TimedNetBuilder, TimedPetriNet, analyze


def build_handshake(reply_deadline: int):
    """The handshake; the flush path opens only after 10 time units."""
    b = TimedNetBuilder(f"timed_handshake_d{reply_deadline}")
    b.place("client_idle", marked=True)
    b.place("client_waiting")
    b.place("request")
    b.place("reply")
    b.place("server_idle", marked=True)
    b.place("server_busy")
    b.place("server_flushing")

    b.transition(
        "send_request",
        interval=(0, 1),
        inputs=["client_idle"],
        outputs=["client_waiting", "request"],
    )
    b.transition(
        "receive",
        interval=(0, 1),
        inputs=["request", "server_idle"],
        outputs=["server_busy"],
    )
    # Fast path: the server must answer within `reply_deadline`.
    b.transition(
        "reply_fast",
        interval=(0, reply_deadline),
        inputs=["server_busy"],
        outputs=["server_idle", "reply"],
    )
    # Slow path: a flush that waits for an idle client — the cross-wait
    # bug — but it only triggers after 10 idle time units.
    b.transition(
        "start_flush",
        interval=(10, 12),
        inputs=["server_busy"],
        outputs=["server_flushing"],
    )
    b.transition(
        "finish_flush",
        interval=(0, 1),
        inputs=["server_flushing", "client_idle"],
        outputs=["server_idle", "reply", "client_idle"],
    )
    b.transition(
        "get_reply",
        interval=(0, 2),
        inputs=["reply", "client_waiting"],
        outputs=["client_idle"],
    )
    return b.build()


def main():
    good = build_handshake(reply_deadline=2)

    untimed = analyze(TimedPetriNet.untimed(good.net))
    print("untimed skeleton:   ", untimed.describe())
    assert untimed.deadlock, "structurally the cross-wait exists"

    timed = analyze(good)
    print("timed (deadline 2): ", timed.describe())
    assert not timed.deadlock
    print(
        "  -> the 2-unit reply deadline preempts the 10-unit flush path:\n"
        "     the design is correct *because of* its timing.\n"
    )

    # Slacken the deadline beyond the flush threshold: bug is back.
    bad = build_handshake(reply_deadline=20)
    timed = analyze(bad)
    print("timed (deadline 20):", timed.describe())
    assert timed.deadlock
    print("  witness:", timed.witness)


if __name__ == "__main__":
    main()
